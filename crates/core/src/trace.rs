//! Deterministic structured event tracing.
//!
//! When enabled (via [`crate::Simulation::run_traced`]) the engine
//! emits one [`TraceRecord`] per simulated event — message send/recv
//! per class, page-fault begin/end, diff create/apply, twin create,
//! lock request/grant/local-pass, barrier arrive/release, thread
//! switch, prefetch issue/drop, transport retry, crash/suspect/
//! recover — stamped with sim-time, node, thread, and a causal link
//! to the record that triggered it. Because the simulation is
//! deterministic for a given (seed, config), the trace is a
//! *total-order fingerprint* of a run: same seed + config ⇒ the exact
//! same byte sequence under [`Trace::encode`], hence the same
//! [`Trace::digest`].
//!
//! Contracts:
//!
//! - **Zero cost when disabled**: every [`Tracer`] entry point
//!   early-returns on the `off` path; the engine never allocates,
//!   charges simulated time, or branches on trace *content* for an
//!   untraced run.
//! - **Observer effect = 0**: enabling tracing changes no simulated
//!   behavior — [`crate::RunReport::digest`] is identical with
//!   tracing on or off (locked down by `tests/trace_determinism.rs`).
//! - **Causality**: a record's `cause` names the id of the record
//!   that triggered it (the received frame for protocol handlers, the
//!   wire send for a receive, the fault begin for a fault end, the
//!   write notice for a diff apply, the first transmission for a
//!   retransmit). `0` means "no recorded cause".
//!
//! The binary format `RTR1` mirrors the `RCK1` checkpoint encoding:
//! little-endian, self-delimiting, FNV-1a digested, with decode
//! errors for truncation, bad magic, and trailing bytes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use rsdsm_simnet::{SimDuration, SimTime};

use crate::oracle::fnv1a;

/// `thread` value for records emitted by the engine itself rather
/// than on behalf of an application thread.
pub const NO_THREAD: u32 = u32::MAX;

/// `cause` value for records with no recorded cause.
pub const NO_CAUSE: u64 = 0;

/// Message-class codes used in [`TraceEvent::MsgSend`] /
/// [`TraceEvent::MsgRecv`]. The first eleven match
/// `MsgBody::kind()`; `ACK` and `HEARTBEAT` cover transport-level
/// frames that carry no protocol body.
pub mod kind {
    /// Demand diff/page request.
    pub const DIFF_REQUEST: u8 = 0;
    /// Demand diff/page reply.
    pub const DIFF_REPLY: u8 = 1;
    /// Non-binding prefetch request.
    pub const PREFETCH_REQUEST: u8 = 2;
    /// Prefetch reply.
    pub const PREFETCH_REPLY: u8 = 3;
    /// Lock token request to the manager.
    pub const LOCK_REQUEST: u8 = 4;
    /// Manager-forwarded lock request chasing the token.
    pub const LOCK_FORWARD: u8 = 5;
    /// Lock token grant.
    pub const LOCK_GRANT: u8 = 6;
    /// Barrier arrival at the manager.
    pub const BARRIER_ARRIVE: u8 = 7;
    /// Barrier release fan-out.
    pub const BARRIER_RELEASE: u8 = 8;
    /// Failure suspicion report to the manager.
    pub const SUSPECT_REPORT: u8 = 9;
    /// Manager-confirmed recovery broadcast.
    pub const RECOVERY_START: u8 = 10;
    /// Transport-level acknowledgement frame.
    pub const ACK: u8 = 11;
    /// Idle-link heartbeat frame.
    pub const HEARTBEAT: u8 = 12;
    /// Prefetch request issued by the adaptive stride engine.
    pub const ADAPTIVE_REQUEST: u8 = 13;
    /// Reply to an adaptive prefetch request.
    pub const ADAPTIVE_REPLY: u8 = 14;
}

/// Human-readable label for a message-class code.
pub fn kind_label(code: u8) -> &'static str {
    match code {
        kind::DIFF_REQUEST => "diff_request",
        kind::DIFF_REPLY => "diff_reply",
        kind::PREFETCH_REQUEST => "prefetch_request",
        kind::PREFETCH_REPLY => "prefetch_reply",
        kind::LOCK_REQUEST => "lock_request",
        kind::LOCK_FORWARD => "lock_forward",
        kind::LOCK_GRANT => "lock_grant",
        kind::BARRIER_ARRIVE => "barrier_arrive",
        kind::BARRIER_RELEASE => "barrier_release",
        kind::SUSPECT_REPORT => "suspect_report",
        kind::RECOVERY_START => "recovery_start",
        kind::ACK => "ack",
        kind::HEARTBEAT => "heartbeat",
        kind::ADAPTIVE_REQUEST => "adaptive_request",
        kind::ADAPTIVE_REPLY => "adaptive_reply",
        _ => "unknown",
    }
}

/// Page-fault outcome classes in [`TraceEvent::FaultEnd`], matching
/// the paper's §3.3 prefetch-effectiveness taxonomy
/// (`MissClass` in the engine).
pub mod class {
    /// Served locally: a prefetch covered the fault in time.
    pub const HIT: u8 = 0;
    /// No prefetch was issued for the page (uncovered miss).
    pub const NO_PF: u8 = 1;
    /// A prefetch was in flight but had not completed (late).
    pub const TOO_LATE: u8 = 2;
    /// A completed prefetch was invalidated before use.
    pub const INVALIDATED: u8 = 3;
}

/// One structured simulated event.
///
/// Field conventions: `page` is the shared-page index, `peer` the
/// remote node of a message or suspicion, `origin`/`seq` identify an
/// interval by its writer and the writer's own vector-clock
/// component — the scalar name every write notice and diff carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame handed to the network (includes retransmissions and
    /// frames the fault plan then drops).
    MsgSend {
        /// Message class (see [`kind`]).
        kind: u8,
        /// Destination node.
        peer: u32,
        /// Per-link transport sequence number (0 for datagrams).
        seq: u64,
        /// Wire bytes.
        bytes: u32,
        /// True for a timeout-driven retransmission.
        retransmit: bool,
    },
    /// A frame arriving at a live NIC.
    MsgRecv {
        /// Message class (see [`kind`]).
        kind: u8,
        /// Source node.
        peer: u32,
        /// Per-link transport sequence number (0 for datagrams).
        seq: u64,
    },
    /// An application thread faulted on a page.
    FaultBegin {
        /// Faulting page.
        page: u32,
        /// True for a write fault (twin will be needed).
        write: bool,
    },
    /// The fault's page became valid again; `cause` links the
    /// matching [`TraceEvent::FaultBegin`].
    FaultEnd {
        /// The page that was made valid.
        page: u32,
        /// §3.3 outcome class (see [`class`]).
        class: u8,
    },
    /// A diff was encoded from a twin (interval close or prefetch
    /// interval split).
    DiffCreate {
        /// Modified page.
        page: u32,
        /// Writer's interval sequence number.
        seq: u32,
        /// Encoded diff bytes.
        bytes: u32,
    },
    /// A remote diff was applied to the local copy; `cause` links
    /// the [`TraceEvent::WriteNotice`] that announced it.
    DiffApply {
        /// Patched page.
        page: u32,
        /// Writing node.
        origin: u32,
        /// Writer's interval sequence number.
        seq: u32,
    },
    /// A twin (pristine copy) was created on first write.
    TwinCreate {
        /// Twinned page.
        page: u32,
    },
    /// A write notice became known at this node.
    WriteNotice {
        /// Invalidated page.
        page: u32,
        /// Writing node.
        origin: u32,
        /// Writer's interval sequence number.
        seq: u32,
    },
    /// A thread asked for a lock.
    LockRequest {
        /// Lock id.
        lock: u32,
    },
    /// The lock token was granted (at the granting node).
    LockGrant {
        /// Lock id.
        lock: u32,
    },
    /// The token passed to a local waiter without leaving the node.
    LockLocalPass {
        /// Lock id.
        lock: u32,
    },
    /// The last local thread arrived at a barrier (node-level
    /// arrival, after request combining).
    BarrierArrive {
        /// Barrier id.
        barrier: u32,
    },
    /// A node processed a barrier release.
    BarrierRelease {
        /// Barrier id.
        barrier: u32,
        /// The node's barrier epoch after this release (1-based).
        epoch: u32,
    },
    /// The node's scheduler switched to another ready thread.
    ThreadSwitch {
        /// Incoming thread id.
        to: u32,
    },
    /// A non-binding prefetch request was issued for a page.
    PrefetchIssue {
        /// Requested page.
        page: u32,
    },
    /// A prefetch frame was dropped by the fault plan.
    PrefetchDrop {
        /// The page whose request or reply was lost.
        page: u32,
        /// False: the request was lost; true: the reply was lost.
        reply: bool,
    },
    /// The retransmission timer fired and the frame was re-sent;
    /// `cause` links the first transmission.
    TransportRetry {
        /// Destination node.
        peer: u32,
        /// Per-link sequence number.
        seq: u64,
        /// The *next* timeout armed after this retry, in ns.
        rto_ns: u64,
    },
    /// Retries were exhausted and the frame was parked for recovery.
    FrameParked {
        /// Unreachable destination.
        peer: u32,
        /// Per-link sequence number.
        seq: u64,
    },
    /// The node crash-stopped.
    Crash {
        /// True when a restart is scheduled (crash-restart).
        restarts: bool,
    },
    /// The node rejoined after a crash-restart.
    Restart,
    /// This node reported `peer` as suspected down.
    Suspect {
        /// Suspected node.
        peer: u32,
    },
    /// The manager confirmed `peer` down and started recovery.
    ConfirmDown {
        /// Confirmed-down node.
        peer: u32,
    },
    /// A barrier-aligned checkpoint was captured.
    CheckpointTaken {
        /// Barrier epoch the checkpoint is aligned to.
        epoch: u32,
        /// Encoded `RCK1` bytes.
        bytes: u32,
    },
    /// A network cut isolated this node from the manager-side
    /// majority; it froze local progress (quorum rule).
    PartitionFreeze,
    /// The active network cut healed (emitted at the manager).
    PartitionHeal,
    /// This node reconciled back into the run after a heal
    /// (checkpoint restore + deterministic replay).
    PartitionRejoin,
    /// A checkpoint's persisted image committed on the node's
    /// durable device (two-slot A/B protocol; see `core::checkpoint`).
    PersistCommit {
        /// Barrier epoch of the committed image.
        epoch: u32,
        /// Persisted bytes (segmented payload plus commit record).
        bytes: u32,
    },
    /// The adaptive engine's detector found (or flipped to) a
    /// majority stride on this thread's fault stream; `cause` links
    /// the [`TraceEvent::FaultBegin`] that completed the majority.
    AdaptiveDetect {
        /// The faulting page that triggered the detection.
        page: u32,
        /// The detected stride, in pages (may be negative).
        stride: i32,
    },
    /// The adaptive throttle controller changed its operating point;
    /// `cause` links the [`TraceEvent::FaultBegin`] whose
    /// classification closed the evaluation window.
    AdaptiveThrottle {
        /// Transition code (`ThrottleChange::code`): 0 ramp, 1
        /// deepen, 2 backoff, 3 suppress, 4 resume.
        change: u8,
        /// Degree (pages per detecting fault) after the transition.
        degree: u32,
        /// Lead (look-ahead multiplier) after the transition.
        lead: u32,
    },
}

impl TraceEvent {
    /// Wire tag of this event variant.
    pub fn tag(&self) -> u8 {
        match self {
            TraceEvent::MsgSend { .. } => 0,
            TraceEvent::MsgRecv { .. } => 1,
            TraceEvent::FaultBegin { .. } => 2,
            TraceEvent::FaultEnd { .. } => 3,
            TraceEvent::DiffCreate { .. } => 4,
            TraceEvent::DiffApply { .. } => 5,
            TraceEvent::TwinCreate { .. } => 6,
            TraceEvent::WriteNotice { .. } => 7,
            TraceEvent::LockRequest { .. } => 8,
            TraceEvent::LockGrant { .. } => 9,
            TraceEvent::LockLocalPass { .. } => 10,
            TraceEvent::BarrierArrive { .. } => 11,
            TraceEvent::BarrierRelease { .. } => 12,
            TraceEvent::ThreadSwitch { .. } => 13,
            TraceEvent::PrefetchIssue { .. } => 14,
            TraceEvent::PrefetchDrop { .. } => 15,
            TraceEvent::TransportRetry { .. } => 16,
            TraceEvent::FrameParked { .. } => 17,
            TraceEvent::Crash { .. } => 18,
            TraceEvent::Restart => 19,
            TraceEvent::Suspect { .. } => 20,
            TraceEvent::ConfirmDown { .. } => 21,
            TraceEvent::CheckpointTaken { .. } => 22,
            TraceEvent::PartitionFreeze => 23,
            TraceEvent::PartitionHeal => 24,
            TraceEvent::PartitionRejoin => 25,
            TraceEvent::PersistCommit { .. } => 26,
            TraceEvent::AdaptiveDetect { .. } => 27,
            TraceEvent::AdaptiveThrottle { .. } => 28,
        }
    }

    /// Exact `RTR1` body size of this event (excluding the shared
    /// record header), so encoding can size its buffer precisely.
    pub fn encoded_body_len(&self) -> usize {
        match self {
            TraceEvent::MsgSend { .. } => 18,
            TraceEvent::MsgRecv { .. } => 13,
            TraceEvent::FaultBegin { .. } | TraceEvent::FaultEnd { .. } => 5,
            TraceEvent::DiffCreate { .. }
            | TraceEvent::DiffApply { .. }
            | TraceEvent::WriteNotice { .. }
            | TraceEvent::FrameParked { .. } => 12,
            TraceEvent::TwinCreate { .. }
            | TraceEvent::LockRequest { .. }
            | TraceEvent::LockGrant { .. }
            | TraceEvent::LockLocalPass { .. }
            | TraceEvent::BarrierArrive { .. }
            | TraceEvent::ThreadSwitch { .. }
            | TraceEvent::PrefetchIssue { .. }
            | TraceEvent::Suspect { .. }
            | TraceEvent::ConfirmDown { .. } => 4,
            TraceEvent::BarrierRelease { .. }
            | TraceEvent::CheckpointTaken { .. }
            | TraceEvent::PersistCommit { .. }
            | TraceEvent::AdaptiveDetect { .. } => 8,
            TraceEvent::PrefetchDrop { .. } => 5,
            TraceEvent::AdaptiveThrottle { .. } => 9,
            TraceEvent::TransportRetry { .. } => 20,
            TraceEvent::Crash { .. } => 1,
            TraceEvent::Restart
            | TraceEvent::PartitionFreeze
            | TraceEvent::PartitionHeal
            | TraceEvent::PartitionRejoin => 0,
        }
    }

    /// Short human-readable name for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::MsgRecv { .. } => "msg_recv",
            TraceEvent::FaultBegin { .. } => "fault_begin",
            TraceEvent::FaultEnd { .. } => "fault_end",
            TraceEvent::DiffCreate { .. } => "diff_create",
            TraceEvent::DiffApply { .. } => "diff_apply",
            TraceEvent::TwinCreate { .. } => "twin_create",
            TraceEvent::WriteNotice { .. } => "write_notice",
            TraceEvent::LockRequest { .. } => "lock_request",
            TraceEvent::LockGrant { .. } => "lock_grant",
            TraceEvent::LockLocalPass { .. } => "lock_local_pass",
            TraceEvent::BarrierArrive { .. } => "barrier_arrive",
            TraceEvent::BarrierRelease { .. } => "barrier_release",
            TraceEvent::ThreadSwitch { .. } => "thread_switch",
            TraceEvent::PrefetchIssue { .. } => "prefetch_issue",
            TraceEvent::PrefetchDrop { .. } => "prefetch_drop",
            TraceEvent::TransportRetry { .. } => "transport_retry",
            TraceEvent::FrameParked { .. } => "frame_parked",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::Restart => "restart",
            TraceEvent::Suspect { .. } => "suspect",
            TraceEvent::ConfirmDown { .. } => "confirm_down",
            TraceEvent::CheckpointTaken { .. } => "checkpoint",
            TraceEvent::PartitionFreeze => "partition_freeze",
            TraceEvent::PartitionHeal => "partition_heal",
            TraceEvent::PartitionRejoin => "partition_rejoin",
            TraceEvent::PersistCommit { .. } => "persist_commit",
            TraceEvent::AdaptiveDetect { .. } => "adaptive_detect",
            TraceEvent::AdaptiveThrottle { .. } => "adaptive_throttle",
        }
    }
}

/// One trace record. A record's id is its 1-based position in
/// [`Trace::records`]; id `0` ([`NO_CAUSE`]) never names a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Node the event happened on.
    pub node: u32,
    /// Application thread involved, or [`NO_THREAD`].
    pub thread: u32,
    /// Id of the record that caused this one, or [`NO_CAUSE`].
    pub cause: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// A complete run trace: every record in global simulated-event
/// order (ties broken by the engine's deterministic event queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Cluster size of the traced run.
    pub nodes: u32,
    /// Threads per node of the traced run.
    pub threads_per_node: u32,
    /// All records, in emission order. Record ids are 1-based
    /// indices into this vector.
    pub records: Vec<TraceRecord>,
}

/// Decode failure for the `RTR1` format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The byte stream ended mid-field.
    Truncated,
    /// The stream does not start with the `RTR1` magic.
    BadMagic,
    /// A structural invariant failed while decoding.
    Corrupt(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadMagic => write!(f, "not an RTR1 trace"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

const MAGIC: u32 = 0x5254_5231; // "RTR1"

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.at + n > self.bytes.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, TraceError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(TraceError::Corrupt("bool out of range")),
        }
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

impl Trace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exact size of the `RTR1` encoding in bytes.
    pub fn encoded_len(&self) -> usize {
        // Stream header + per-record fixed header + per-event body.
        20 + self
            .records
            .iter()
            .map(|r| 25 + r.event.encoded_body_len())
            .sum::<usize>()
    }

    /// Encodes the trace into the deterministic `RTR1` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, self.nodes);
        put_u32(&mut out, self.threads_per_node);
        put_u64(&mut out, self.records.len() as u64);
        for r in &self.records {
            put_u64(&mut out, r.at.as_nanos());
            put_u32(&mut out, r.node);
            put_u32(&mut out, r.thread);
            put_u64(&mut out, r.cause);
            put_u8(&mut out, r.event.tag());
            match &r.event {
                TraceEvent::MsgSend {
                    kind,
                    peer,
                    seq,
                    bytes,
                    retransmit,
                } => {
                    put_u8(&mut out, *kind);
                    put_u32(&mut out, *peer);
                    put_u64(&mut out, *seq);
                    put_u32(&mut out, *bytes);
                    put_bool(&mut out, *retransmit);
                }
                TraceEvent::MsgRecv { kind, peer, seq } => {
                    put_u8(&mut out, *kind);
                    put_u32(&mut out, *peer);
                    put_u64(&mut out, *seq);
                }
                TraceEvent::FaultBegin { page, write } => {
                    put_u32(&mut out, *page);
                    put_bool(&mut out, *write);
                }
                TraceEvent::FaultEnd { page, class } => {
                    put_u32(&mut out, *page);
                    put_u8(&mut out, *class);
                }
                TraceEvent::DiffCreate { page, seq, bytes } => {
                    put_u32(&mut out, *page);
                    put_u32(&mut out, *seq);
                    put_u32(&mut out, *bytes);
                }
                TraceEvent::DiffApply { page, origin, seq } => {
                    put_u32(&mut out, *page);
                    put_u32(&mut out, *origin);
                    put_u32(&mut out, *seq);
                }
                TraceEvent::TwinCreate { page } => put_u32(&mut out, *page),
                TraceEvent::WriteNotice { page, origin, seq } => {
                    put_u32(&mut out, *page);
                    put_u32(&mut out, *origin);
                    put_u32(&mut out, *seq);
                }
                TraceEvent::LockRequest { lock }
                | TraceEvent::LockGrant { lock }
                | TraceEvent::LockLocalPass { lock } => put_u32(&mut out, *lock),
                TraceEvent::BarrierArrive { barrier } => put_u32(&mut out, *barrier),
                TraceEvent::BarrierRelease { barrier, epoch } => {
                    put_u32(&mut out, *barrier);
                    put_u32(&mut out, *epoch);
                }
                TraceEvent::ThreadSwitch { to } => put_u32(&mut out, *to),
                TraceEvent::PrefetchIssue { page } => put_u32(&mut out, *page),
                TraceEvent::PrefetchDrop { page, reply } => {
                    put_u32(&mut out, *page);
                    put_bool(&mut out, *reply);
                }
                TraceEvent::TransportRetry { peer, seq, rto_ns } => {
                    put_u32(&mut out, *peer);
                    put_u64(&mut out, *seq);
                    put_u64(&mut out, *rto_ns);
                }
                TraceEvent::FrameParked { peer, seq } => {
                    put_u32(&mut out, *peer);
                    put_u64(&mut out, *seq);
                }
                TraceEvent::Crash { restarts } => put_bool(&mut out, *restarts),
                TraceEvent::Restart
                | TraceEvent::PartitionFreeze
                | TraceEvent::PartitionHeal
                | TraceEvent::PartitionRejoin => {}
                TraceEvent::Suspect { peer } | TraceEvent::ConfirmDown { peer } => {
                    put_u32(&mut out, *peer)
                }
                TraceEvent::CheckpointTaken { epoch, bytes }
                | TraceEvent::PersistCommit { epoch, bytes } => {
                    put_u32(&mut out, *epoch);
                    put_u32(&mut out, *bytes);
                }
                TraceEvent::AdaptiveDetect { page, stride } => {
                    put_u32(&mut out, *page);
                    put_u32(&mut out, *stride as u32);
                }
                TraceEvent::AdaptiveThrottle {
                    change,
                    degree,
                    lead,
                } => {
                    put_u8(&mut out, *change);
                    put_u32(&mut out, *degree);
                    put_u32(&mut out, *lead);
                }
            }
        }
        out
    }

    /// Decodes an `RTR1` byte stream.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on truncation, wrong magic, unknown
    /// event tags, out-of-range causes, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut c = Cursor { bytes, at: 0 };
        if c.u32()? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let nodes = c.u32()?;
        let threads_per_node = c.u32()?;
        let count = c.u64()?;
        if count > bytes.len() as u64 {
            // Each record occupies well over one byte; a count larger
            // than the stream is corrupt, not merely truncated.
            return Err(TraceError::Corrupt("record count exceeds stream"));
        }
        let mut records = Vec::with_capacity(count as usize);
        for i in 0..count {
            let at = SimTime::from_nanos(c.u64()?);
            let node = c.u32()?;
            let thread = c.u32()?;
            let cause = c.u64()?;
            if cause > i {
                return Err(TraceError::Corrupt("cause is not a prior record"));
            }
            let event = match c.u8()? {
                0 => TraceEvent::MsgSend {
                    kind: c.u8()?,
                    peer: c.u32()?,
                    seq: c.u64()?,
                    bytes: c.u32()?,
                    retransmit: c.bool()?,
                },
                1 => TraceEvent::MsgRecv {
                    kind: c.u8()?,
                    peer: c.u32()?,
                    seq: c.u64()?,
                },
                2 => TraceEvent::FaultBegin {
                    page: c.u32()?,
                    write: c.bool()?,
                },
                3 => TraceEvent::FaultEnd {
                    page: c.u32()?,
                    class: c.u8()?,
                },
                4 => TraceEvent::DiffCreate {
                    page: c.u32()?,
                    seq: c.u32()?,
                    bytes: c.u32()?,
                },
                5 => TraceEvent::DiffApply {
                    page: c.u32()?,
                    origin: c.u32()?,
                    seq: c.u32()?,
                },
                6 => TraceEvent::TwinCreate { page: c.u32()? },
                7 => TraceEvent::WriteNotice {
                    page: c.u32()?,
                    origin: c.u32()?,
                    seq: c.u32()?,
                },
                8 => TraceEvent::LockRequest { lock: c.u32()? },
                9 => TraceEvent::LockGrant { lock: c.u32()? },
                10 => TraceEvent::LockLocalPass { lock: c.u32()? },
                11 => TraceEvent::BarrierArrive { barrier: c.u32()? },
                12 => TraceEvent::BarrierRelease {
                    barrier: c.u32()?,
                    epoch: c.u32()?,
                },
                13 => TraceEvent::ThreadSwitch { to: c.u32()? },
                14 => TraceEvent::PrefetchIssue { page: c.u32()? },
                15 => TraceEvent::PrefetchDrop {
                    page: c.u32()?,
                    reply: c.bool()?,
                },
                16 => TraceEvent::TransportRetry {
                    peer: c.u32()?,
                    seq: c.u64()?,
                    rto_ns: c.u64()?,
                },
                17 => TraceEvent::FrameParked {
                    peer: c.u32()?,
                    seq: c.u64()?,
                },
                18 => TraceEvent::Crash {
                    restarts: c.bool()?,
                },
                19 => TraceEvent::Restart,
                20 => TraceEvent::Suspect { peer: c.u32()? },
                21 => TraceEvent::ConfirmDown { peer: c.u32()? },
                22 => TraceEvent::CheckpointTaken {
                    epoch: c.u32()?,
                    bytes: c.u32()?,
                },
                23 => TraceEvent::PartitionFreeze,
                24 => TraceEvent::PartitionHeal,
                25 => TraceEvent::PartitionRejoin,
                26 => TraceEvent::PersistCommit {
                    epoch: c.u32()?,
                    bytes: c.u32()?,
                },
                27 => TraceEvent::AdaptiveDetect {
                    page: c.u32()?,
                    stride: c.u32()? as i32,
                },
                28 => TraceEvent::AdaptiveThrottle {
                    change: c.u8()?,
                    degree: c.u32()?,
                    lead: c.u32()?,
                },
                _ => return Err(TraceError::Corrupt("unknown event tag")),
            };
            records.push(TraceRecord {
                at,
                node,
                thread,
                cause,
                event,
            });
        }
        if c.at != bytes.len() {
            return Err(TraceError::Corrupt("trailing bytes"));
        }
        Ok(Trace {
            nodes,
            threads_per_node,
            records,
        })
    }

    /// FNV-1a digest of the `RTR1` encoding — the run's total-order
    /// fingerprint.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.encode())
    }

    /// Derives aggregate metrics from the trace post-hoc.
    pub fn metrics(&self) -> TraceMetrics {
        let mut msg_latency: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut fault_service = Histogram::new();
        let mut links: BTreeMap<(u32, u32), RetryTimeline> = BTreeMap::new();
        let mut prefetch = PrefetchTraceSummary::default();
        for r in &self.records {
            match &r.event {
                TraceEvent::MsgRecv { kind, .. } => {
                    if let Some(send) = self.resolve(r.cause) {
                        if matches!(send.event, TraceEvent::MsgSend { .. }) {
                            msg_latency
                                .entry(kind_label(*kind).to_string())
                                .or_default()
                                .insert(r.at.saturating_since(send.at).as_nanos());
                        }
                    }
                }
                TraceEvent::FaultEnd { class, .. } => {
                    if let Some(begin) = self.resolve(r.cause) {
                        if matches!(begin.event, TraceEvent::FaultBegin { .. }) {
                            fault_service.insert(r.at.saturating_since(begin.at).as_nanos());
                        }
                    }
                    match *class {
                        class::HIT => prefetch.hits += 1,
                        class::TOO_LATE => prefetch.too_late += 1,
                        class::INVALIDATED => prefetch.invalidated += 1,
                        _ => prefetch.no_pf += 1,
                    }
                }
                TraceEvent::TransportRetry { peer, rto_ns, .. } => {
                    let link = links.entry((r.node, *peer)).or_insert(RetryTimeline {
                        src: r.node,
                        dst: *peer,
                        retries: 0,
                        first: r.at,
                        last: r.at,
                        max_rto: SimDuration::ZERO,
                    });
                    link.retries += 1;
                    link.first = link.first.min(r.at);
                    link.last = link.last.max(r.at);
                    link.max_rto = link.max_rto.max(SimDuration::from_nanos(*rto_ns));
                }
                TraceEvent::PrefetchIssue { .. } => prefetch.issued += 1,
                TraceEvent::PrefetchDrop { reply, .. } => {
                    if *reply {
                        prefetch.replies_lost += 1;
                    } else {
                        prefetch.requests_lost += 1;
                    }
                }
                _ => {}
            }
        }
        TraceMetrics {
            events: self.records.len() as u64,
            msg_latency,
            fault_service,
            retry_links: links.into_values().collect(),
            prefetch,
        }
    }

    fn resolve(&self, cause: u64) -> Option<&TraceRecord> {
        if cause == NO_CAUSE {
            return None;
        }
        self.records.get((cause - 1) as usize)
    }
}

/// Power-of-two latency histogram: bucket `i` counts values whose
/// bit length is `i` (bucket 0 holds zeros), so bucket boundaries
/// are exact powers of two up to `u64::MAX`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    /// Bucket index of `v`: its bit length.
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn insert(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Folds `other` into `self`. Merging is commutative and
    /// associative.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0.0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket counts (bucket `i` = values of bit length `i`).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }
}

/// Retransmission activity on one directed link, from
/// [`TraceEvent::TransportRetry`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryTimeline {
    /// Sending node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Retransmissions on the link.
    pub retries: u64,
    /// Time of the first retransmission.
    pub first: SimTime,
    /// Time of the last retransmission.
    pub last: SimTime,
    /// Largest RTO armed after a retry on this link.
    pub max_rto: SimDuration,
}

/// Prefetch-effectiveness counters derived from the trace,
/// matching the paper's §3.3 taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchTraceSummary {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Faults whose page a prefetch had covered in time.
    pub hits: u64,
    /// Faults whose covering prefetch was still in flight.
    pub too_late: u64,
    /// Faults whose completed prefetch had been invalidated.
    pub invalidated: u64,
    /// Faults with no covering prefetch at all.
    pub no_pf: u64,
    /// Prefetch requests lost to the fault plan.
    pub requests_lost: u64,
    /// Prefetch replies lost to the fault plan.
    pub replies_lost: u64,
}

impl PrefetchTraceSummary {
    /// Faults a prefetch at least tried to cover.
    pub fn covered(&self) -> u64 {
        self.hits + self.too_late + self.invalidated
    }

    /// Fraction of faults covered by some prefetch (0.0 when there
    /// were no faults — never NaN).
    pub fn coverage(&self) -> f64 {
        let total = self.covered() + self.no_pf;
        if total == 0 {
            0.0
        } else {
            self.covered() as f64 / total as f64
        }
    }

    /// Fraction of covered faults the prefetch actually served
    /// (0.0 when nothing was covered — never NaN).
    pub fn accuracy(&self) -> f64 {
        let covered = self.covered();
        if covered == 0 {
            0.0
        } else {
            self.hits as f64 / covered as f64
        }
    }

    /// Fraction of covered faults whose prefetch arrived too late
    /// (0.0 when nothing was covered — never NaN).
    pub fn lateness(&self) -> f64 {
        let covered = self.covered();
        if covered == 0 {
            0.0
        } else {
            self.too_late as f64 / covered as f64
        }
    }
}

/// Aggregate metrics derived from a [`Trace`] post-hoc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMetrics {
    /// Total records in the trace.
    pub events: u64,
    /// Send→recv wire latency per message class, in ns.
    pub msg_latency: BTreeMap<String, Histogram>,
    /// Page-fault service time (fault begin → page valid), in ns.
    pub fault_service: Histogram,
    /// Per-directed-link retransmission timelines, sorted by
    /// (src, dst).
    pub retry_links: Vec<RetryTimeline>,
    /// §3.3 prefetch-effectiveness counters.
    pub prefetch: PrefetchTraceSummary,
}

impl TraceMetrics {
    /// Total retransmissions across all links.
    pub fn total_retries(&self) -> u64 {
        self.retry_links.iter().map(|l| l.retries).sum()
    }
}

/// The engine-side emitter. All entry points early-return when
/// tracing is off, so an untraced run does no tracing work at all.
#[derive(Debug)]
pub struct Tracer {
    on: bool,
    nodes: u32,
    threads_per_node: u32,
    records: Vec<TraceRecord>,
    /// Cause applied to records emitted while handling the current
    /// engine event, when no explicit cause is given (set to the
    /// `MsgRecv` id while a received frame is dispatched).
    current: u64,
    /// (src, dst, seq) → id of the frame's *first* transmission.
    first_sends: HashMap<(u32, u32, u64), u64>,
    /// (node, page) → (fault-begin id, §3.3 class) for in-flight
    /// demand fetches.
    faults: HashMap<(u32, u32), (u64, u8)>,
    /// (node, page, origin, seq) → id of the `WriteNotice` record.
    notices: HashMap<(u32, u32, u32, u32), u64>,
}

impl Tracer {
    /// A tracer; emits nothing unless `on`.
    pub fn new(on: bool, nodes: u32, threads_per_node: u32) -> Self {
        Tracer {
            on,
            nodes,
            threads_per_node,
            // Even the smallest traced runs emit thousands of records;
            // start large enough to skip the early doubling regrowths.
            records: if on {
                Vec::with_capacity(8192)
            } else {
                Vec::new()
            },
            current: NO_CAUSE,
            first_sends: HashMap::new(),
            faults: HashMap::new(),
            notices: HashMap::new(),
        }
    }

    /// Whether tracing is enabled.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Clears the ambient cause at the start of an engine event.
    pub fn begin_event(&mut self) {
        self.current = NO_CAUSE;
    }

    /// Sets the ambient cause (the `MsgRecv` id) for records emitted
    /// while the current frame is dispatched.
    pub fn set_current(&mut self, id: u64) {
        self.current = id;
    }

    /// Emits one record and returns its id (0 when tracing is off).
    /// A `cause` of [`NO_CAUSE`] inherits the ambient cause.
    pub fn emit(
        &mut self,
        at: SimTime,
        node: u32,
        thread: u32,
        cause: u64,
        event: TraceEvent,
    ) -> u64 {
        if !self.on {
            return NO_CAUSE;
        }
        let cause = if cause == NO_CAUSE {
            self.current
        } else {
            cause
        };
        self.records.push(TraceRecord {
            at,
            node,
            thread,
            cause,
            event,
        });
        self.records.len() as u64
    }

    /// Remembers the first transmission of a reliable frame.
    pub fn note_first_send(&mut self, src: u32, dst: u32, seq: u64, id: u64) {
        if !self.on {
            return;
        }
        self.first_sends.entry((src, dst, seq)).or_insert(id);
    }

    /// Id of a reliable frame's first transmission ([`NO_CAUSE`]
    /// when unknown).
    pub fn first_send(&self, src: u32, dst: u32, seq: u64) -> u64 {
        if !self.on {
            return NO_CAUSE;
        }
        self.first_sends
            .get(&(src, dst, seq))
            .copied()
            .unwrap_or(NO_CAUSE)
    }

    /// Forgets a delivered frame's first transmission (keeps the
    /// map bounded by in-flight frames).
    pub fn forget_send(&mut self, src: u32, dst: u32, seq: u64) {
        if self.on {
            self.first_sends.remove(&(src, dst, seq));
        }
    }

    /// Remembers the begin record and outcome class of an in-flight
    /// demand fetch.
    pub fn note_fault(&mut self, node: u32, page: u32, begin: u64, class: u8) {
        if self.on {
            self.faults.insert((node, page), (begin, class));
        }
    }

    /// Takes the begin record and class of a completing fetch.
    pub fn take_fault(&mut self, node: u32, page: u32) -> Option<(u64, u8)> {
        if !self.on {
            return None;
        }
        self.faults.remove(&(node, page))
    }

    /// Remembers the `WriteNotice` record for an interval at a node.
    pub fn note_notice(&mut self, node: u32, page: u32, origin: u32, seq: u32, id: u64) {
        if self.on {
            self.notices.insert((node, page, origin, seq), id);
        }
    }

    /// Id of the `WriteNotice` record a `DiffApply` descends from.
    pub fn notice_id(&self, node: u32, page: u32, origin: u32, seq: u32) -> u64 {
        if !self.on {
            return NO_CAUSE;
        }
        self.notices
            .get(&(node, page, origin, seq))
            .copied()
            .unwrap_or(NO_CAUSE)
    }

    /// Consumes the tracer into the finished [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            nodes: self.nodes,
            threads_per_node: self.threads_per_node,
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Tracer::new(true, 2, 1);
        let send = t.emit(
            SimTime::from_nanos(10),
            0,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::MsgSend {
                kind: kind::DIFF_REQUEST,
                peer: 1,
                seq: 1,
                bytes: 64,
                retransmit: false,
            },
        );
        let recv = t.emit(
            SimTime::from_nanos(150),
            1,
            NO_THREAD,
            send,
            TraceEvent::MsgRecv {
                kind: kind::DIFF_REQUEST,
                peer: 0,
                seq: 1,
            },
        );
        t.set_current(recv);
        t.emit(
            SimTime::from_nanos(160),
            1,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::DiffCreate {
                page: 7,
                seq: 3,
                bytes: 40,
            },
        );
        t.begin_event();
        let begin = t.emit(
            SimTime::from_nanos(200),
            0,
            0,
            NO_CAUSE,
            TraceEvent::FaultBegin {
                page: 7,
                write: true,
            },
        );
        t.emit(
            SimTime::from_nanos(500),
            0,
            0,
            begin,
            TraceEvent::FaultEnd {
                page: 7,
                class: class::HIT,
            },
        );
        t.emit(
            SimTime::from_nanos(600),
            0,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::TransportRetry {
                peer: 1,
                seq: 2,
                rto_ns: 4_000_000,
            },
        );
        t.finish()
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample();
        let bytes = t.encode();
        let back = Trace::decode(&bytes).expect("decode");
        assert_eq!(t, back);
        assert_eq!(t.digest(), back.digest());
    }

    #[test]
    fn encoded_len_is_exact() {
        let t = sample();
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(
            bytes.capacity(),
            t.encoded_len(),
            "no regrowth during encode"
        );
    }

    #[test]
    fn encoded_body_len_matches_every_variant() {
        let events = vec![
            TraceEvent::MsgSend {
                kind: 0,
                peer: 1,
                seq: 2,
                bytes: 3,
                retransmit: false,
            },
            TraceEvent::MsgRecv {
                kind: 0,
                peer: 1,
                seq: 2,
            },
            TraceEvent::FaultBegin {
                page: 1,
                write: true,
            },
            TraceEvent::FaultEnd { page: 1, class: 0 },
            TraceEvent::DiffCreate {
                page: 1,
                seq: 2,
                bytes: 3,
            },
            TraceEvent::DiffApply {
                page: 1,
                origin: 2,
                seq: 3,
            },
            TraceEvent::TwinCreate { page: 1 },
            TraceEvent::WriteNotice {
                page: 1,
                origin: 2,
                seq: 3,
            },
            TraceEvent::LockRequest { lock: 1 },
            TraceEvent::LockGrant { lock: 1 },
            TraceEvent::LockLocalPass { lock: 1 },
            TraceEvent::BarrierArrive { barrier: 1 },
            TraceEvent::BarrierRelease {
                barrier: 1,
                epoch: 2,
            },
            TraceEvent::ThreadSwitch { to: 1 },
            TraceEvent::PrefetchIssue { page: 1 },
            TraceEvent::PrefetchDrop {
                page: 1,
                reply: true,
            },
            TraceEvent::TransportRetry {
                peer: 1,
                seq: 2,
                rto_ns: 3,
            },
            TraceEvent::FrameParked { peer: 1, seq: 2 },
            TraceEvent::Crash { restarts: true },
            TraceEvent::Restart,
            TraceEvent::Suspect { peer: 1 },
            TraceEvent::ConfirmDown { peer: 1 },
            TraceEvent::CheckpointTaken { epoch: 1, bytes: 2 },
            TraceEvent::PartitionFreeze,
            TraceEvent::PartitionHeal,
            TraceEvent::PartitionRejoin,
            TraceEvent::PersistCommit { epoch: 1, bytes: 2 },
            TraceEvent::AdaptiveDetect {
                page: 1,
                stride: -3,
            },
            TraceEvent::AdaptiveThrottle {
                change: 2,
                degree: 4,
                lead: 1,
            },
        ];
        for event in events {
            let t = Trace {
                nodes: 1,
                threads_per_node: 1,
                records: vec![TraceRecord {
                    at: SimTime::ZERO,
                    node: 0,
                    thread: NO_THREAD,
                    cause: NO_CAUSE,
                    event,
                }],
            };
            assert_eq!(
                t.encode().len(),
                t.encoded_len(),
                "size mismatch for {}",
                t.records[0].event.label()
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Trace::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Trace::decode(&bytes), Err(TraceError::BadMagic));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            Trace::decode(&bytes),
            Err(TraceError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn forward_cause_is_rejected() {
        let t = Trace {
            nodes: 1,
            threads_per_node: 1,
            records: vec![TraceRecord {
                at: SimTime::ZERO,
                node: 0,
                thread: NO_THREAD,
                cause: 1, // would name itself
                event: TraceEvent::Restart,
            }],
        };
        assert_eq!(
            Trace::decode(&t.encode()),
            Err(TraceError::Corrupt("cause is not a prior record"))
        );
    }

    #[test]
    fn digest_tracks_content() {
        let a = sample();
        let mut b = sample();
        b.records[0].at = SimTime::from_nanos(11);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), sample().digest());
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let mut t = Tracer::new(false, 4, 1);
        let id = t.emit(SimTime::ZERO, 0, NO_THREAD, NO_CAUSE, TraceEvent::Restart);
        assert_eq!(id, NO_CAUSE);
        t.note_first_send(0, 1, 1, 5);
        assert_eq!(t.first_send(0, 1, 1), NO_CAUSE);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn metrics_from_sample() {
        let m = sample().metrics();
        assert_eq!(m.events, 6);
        let lat = &m.msg_latency["diff_request"];
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum(), 140);
        assert_eq!(m.fault_service.count(), 1);
        assert_eq!(m.fault_service.sum(), 300);
        assert_eq!(m.retry_links.len(), 1);
        assert_eq!(m.retry_links[0].retries, 1);
        assert_eq!(m.retry_links[0].max_rto, SimDuration::from_millis(4));
        assert_eq!(m.prefetch.hits, 1);
        assert_eq!(m.total_retries(), 1);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        for v in [0u64, 1, 2, 3, 1024] {
            h.insert(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[11], 1); // 1024
        assert!((h.mean() - 206.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_summary_is_nan_free_when_empty() {
        let p = PrefetchTraceSummary::default();
        assert_eq!(p.coverage(), 0.0);
        assert_eq!(p.accuracy(), 0.0);
        assert_eq!(p.lateness(), 0.0);
    }
}
