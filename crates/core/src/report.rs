//! Run results: the measurements behind every figure and table.

use std::fmt;

use rsdsm_simnet::{FaultStats, NetStats, SimDuration};

use crate::accounting::Breakdown;
use crate::config::DsmConfig;
use crate::node::{AccessCounters, NodeCounters};
use crate::oracle::{fnv1a, OracleOutcome};
use crate::prefetch::AdaptiveStats;
use crate::recovery::RecoveryStats;
use crate::trace::TraceMetrics;
use crate::transport::TransportSummary;

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An application thread panicked (message included when known).
    AppThread(String),
    /// The simulated-time safety limit was exceeded.
    TimeLimit,
    /// The event queue drained while threads were still blocked.
    Deadlock(String),
    /// The reliable transport exhausted its retry budget for a
    /// message (persistent injected loss beyond what the retry cap
    /// can absorb).
    Transport(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::AppThread(msg) => write!(f, "application thread panicked: {msg}"),
            SimError::TimeLimit => write!(f, "simulated time limit exceeded"),
            SimError::Deadlock(what) => write!(f, "deadlock: {what}"),
            SimError::Transport(what) => write!(f, "reliable transport gave up: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-kind network traffic row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRow {
    /// Message kind label.
    pub kind: &'static str,
    /// Messages delivered.
    pub msgs: u64,
    /// Bytes delivered (payload + headers).
    pub bytes: u64,
    /// Messages dropped.
    pub dropped: u64,
}

/// Network totals for a run (Table 1 / Table 2 columns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetSummary {
    /// Messages delivered.
    pub total_msgs: u64,
    /// Bytes delivered, including headers.
    pub total_bytes: u64,
    /// Droppable messages lost to congestion.
    pub drops: u64,
    /// Mean queueing delay per delivered message.
    pub mean_queue_delay: SimDuration,
    /// Worst queueing delay.
    pub max_queue_delay: SimDuration,
    /// Per-kind rows, in kind order.
    pub per_kind: Vec<TrafficRow>,
}

impl NetSummary {
    pub(crate) fn from_stats(stats: &NetStats) -> Self {
        NetSummary {
            total_msgs: stats.total_msgs(),
            total_bytes: stats.total_bytes(),
            drops: stats.drops(),
            mean_queue_delay: stats.mean_queue_delay(),
            max_queue_delay: stats.max_queue_delay(),
            per_kind: stats
                .kinds()
                .map(|(kind, k)| TrafficRow {
                    kind,
                    msgs: k.msgs,
                    bytes: k.bytes,
                    dropped: k.dropped,
                })
                .collect(),
        }
    }
}

/// Remote memory miss measurements (Table 1 right-hand columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissSummary {
    /// Page faults that entered the protocol.
    pub faults: u64,
    /// Faults that required remote messages.
    pub misses: u64,
    /// Sum of miss latencies.
    pub latency_sum: SimDuration,
    /// Per-thread memory stall time.
    pub stall_sum: SimDuration,
}

impl MissSummary {
    /// Average latency of a remote miss.
    pub fn avg_latency(&self) -> SimDuration {
        if self.misses == 0 {
            SimDuration::ZERO
        } else {
            self.latency_sum / self.misses
        }
    }
}

/// Lock or barrier stall measurements (Table 2 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncSummary {
    /// Remote events (token requests / barrier episodes).
    pub events: u64,
    /// Stall occurrences (threads that actually blocked).
    pub waits: u64,
    /// Sum of per-thread stall time.
    pub stall_sum: SimDuration,
}

impl SyncSummary {
    /// Average stall per blocking occurrence.
    pub fn avg_stall(&self) -> SimDuration {
        if self.waits == 0 {
            SimDuration::ZERO
        } else {
            self.stall_sum / self.waits
        }
    }
}

/// Prefetch effectiveness measurements (Table 1 and Figure 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchSummary {
    /// Prefetch operations executed (page granularity).
    pub calls: u64,
    /// Prefetches that found their data locally.
    pub unnecessary: u64,
    /// Prefetches suppressed because a request was in flight.
    pub suppressed_inflight: u64,
    /// Prefetches suppressed by the §5.1 redundancy flag.
    pub suppressed_flag: u64,
    /// Prefetches dropped by throttling.
    pub throttled: u64,
    /// Emulated compiler checks on private data.
    pub private_checks: u64,
    /// Prefetch request messages sent.
    pub messages: u64,
    /// Prefetch requests dropped by the network at send time.
    pub send_drops: u64,
    /// Prefetch replies dropped by the network (the requester fell
    /// back to a demand fault).
    pub reply_drops: u64,
    /// Faults fully covered by prefetched data (Figure 3 "pf-hit").
    pub hits: u64,
    /// Prefetched but not arrived in time ("pf-miss: too late").
    pub too_late: u64,
    /// Prefetched but invalidated before use ("pf-miss: invalidated").
    pub invalidated: u64,
    /// Faults on pages never prefetched ("no pf").
    pub no_pf: u64,
}

impl PrefetchSummary {
    /// The coverage factor: the fraction of original misses that were
    /// prefetched at all (Table 1).
    pub fn coverage(&self) -> f64 {
        let covered = self.hits + self.too_late + self.invalidated;
        let total = covered + self.no_pf;
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Fraction of prefetch operations that were unnecessary (Table 1).
    pub fn unnecessary_fraction(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.unnecessary as f64 / self.calls as f64
        }
    }
}

/// Directory-layer measurements (the scale-out suite's hot-spot
/// analysis). All zero when [`DirectoryConfig`](crate::DirectoryConfig)
/// is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectorySummary {
    /// Fetch requests served by the page's home node.
    pub home_hits: u64,
    /// Full interval records re-served by homes to heal requesters
    /// whose pruned notice boards lacked a page's history.
    pub forwards: u64,
    /// Write notices dropped at nodes with no interest in the page.
    pub pruned: u64,
    /// First-touch home migrations performed.
    pub migrations: u64,
}

/// Multithreading measurements (Table 2 left columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtSummary {
    /// Context switches taken.
    pub switches: u64,
    /// Sum of busy run lengths between long-latency events.
    pub run_length_sum: SimDuration,
    /// Number of runs measured.
    pub run_length_count: u64,
    /// Sum of all per-thread stalls (memory + locks + barriers).
    pub stall_sum: SimDuration,
    /// Number of stalls.
    pub stall_count: u64,
}

impl MtSummary {
    /// Average busy run length between stalls.
    pub fn avg_run_length(&self) -> SimDuration {
        if self.run_length_count == 0 {
            SimDuration::ZERO
        } else {
            self.run_length_sum / self.run_length_count
        }
    }

    /// Average stall time across all long-latency events.
    pub fn avg_stall(&self) -> SimDuration {
        if self.stall_count == 0 {
            SimDuration::ZERO
        } else {
            self.stall_sum / self.stall_count
        }
    }
}

/// Everything measured in one simulated run.
#[derive(Clone)]
pub struct RunReport {
    /// Benchmark name.
    pub app: String,
    /// The configuration that produced this run.
    pub config: DsmConfig,
    /// Wall-clock (simulated) completion time.
    pub total_time: SimDuration,
    /// Per-node execution-time breakdowns.
    pub node_breakdowns: Vec<Breakdown>,
    /// Sum of all nodes' breakdowns (the paper's normalized bars are
    /// derived from this).
    pub breakdown: Breakdown,
    /// Whether the application's verification accepted the result.
    pub verified: bool,
    /// Network traffic.
    pub net: NetSummary,
    /// Remote memory misses.
    pub misses: MissSummary,
    /// Lock behaviour.
    pub locks: SyncSummary,
    /// Barrier behaviour.
    pub barriers: SyncSummary,
    /// Prefetch behaviour.
    pub prefetch: PrefetchSummary,
    /// Multithreading behaviour.
    pub mt: MtSummary,
    /// Reliable-transport behaviour (retransmissions, acks, dedup).
    pub transport: TransportSummary,
    /// Fault-injection tallies from the network layer.
    pub fault_injection: FaultStats,
    /// Crash, failure-detection, checkpoint, and recovery tallies.
    pub recovery: RecoveryStats,
    /// Garbage-collection passes across all nodes.
    pub gc_passes: u64,
    /// Directory-layer tallies (home hits, heal forwards, pruned
    /// notices, first-touch migrations); all zero unless the run's
    /// [`DirectoryConfig`](crate::DirectoryConfig) is enabled.
    pub directory: DirectorySummary,
    /// Simulation events the engine loop processed — the scaling
    /// suite's events-per-second numerator.
    pub events_processed: u64,
    /// Consistency-oracle observations (invariant violations, lock
    /// trace, final image); `None` unless the run's
    /// [`OracleConfig`](crate::OracleConfig) enabled something.
    pub oracle: Option<OracleOutcome>,
    /// Trace-derived metrics (per-class latency histograms, fault
    /// service times, retry timelines, §3.3 prefetch taxonomy);
    /// `None` unless the run was started with
    /// [`Simulation::run_traced`](crate::Simulation::run_traced).
    /// Excluded from [`digest`](RunReport::digest) so tracing has
    /// zero observer effect on the determinism fingerprint.
    pub trace: Option<TraceMetrics>,
    /// Adaptive prefetch engine tallies; `None` unless the run's
    /// [`AdaptiveConfig`](crate::AdaptiveConfig) is enabled, and
    /// hidden from the Debug rendering (hence from
    /// [`digest`](RunReport::digest)) while `None`, so pre-adaptive
    /// pinned digests are untouched.
    pub adaptive: Option<AdaptiveStats>,
}

// Hand-written to replicate the derive exactly, except that the
// `adaptive` field only renders when present: the digest is FNV over
// the Debug text, and disabled-adaptive runs must stay byte-identical
// to reports from before the field existed.
impl fmt::Debug for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("RunReport");
        s.field("app", &self.app)
            .field("config", &self.config)
            .field("total_time", &self.total_time)
            .field("node_breakdowns", &self.node_breakdowns)
            .field("breakdown", &self.breakdown)
            .field("verified", &self.verified)
            .field("net", &self.net)
            .field("misses", &self.misses)
            .field("locks", &self.locks)
            .field("barriers", &self.barriers)
            .field("prefetch", &self.prefetch)
            .field("mt", &self.mt)
            .field("transport", &self.transport)
            .field("fault_injection", &self.fault_injection)
            .field("recovery", &self.recovery)
            .field("gc_passes", &self.gc_passes)
            .field("directory", &self.directory)
            .field("events_processed", &self.events_processed)
            .field("oracle", &self.oracle)
            .field("trace", &self.trace);
        if self.adaptive.is_some() {
            s.field("adaptive", &self.adaptive);
        }
        s.finish()
    }
}

impl RunReport {
    /// FNV-1a digest of the whole report (every counter, breakdown,
    /// and oracle observation). Two runs with identical (seed,
    /// config) must produce identical digests — the determinism
    /// harness in `rsdsm-oracle` asserts exactly that. The
    /// trace-metrics field is masked out first so a traced and an
    /// untraced run of the same (seed, config) digest identically.
    pub fn digest(&self) -> u64 {
        if self.trace.is_some() {
            let mut masked = self.clone();
            masked.trace = None;
            fnv1a(format!("{masked:?}").as_bytes())
        } else {
            fnv1a(format!("{self:?}").as_bytes())
        }
    }

    /// Speedup of this run relative to a baseline total time
    /// (e.g. `orig.total_time`); greater than 1 means faster.
    pub fn speedup_vs(&self, baseline: SimDuration) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            baseline.as_nanos() as f64 / self.total_time.as_nanos() as f64
        }
    }

    /// One-line drop/retry/duplicate summary for the figure and table
    /// binaries; `None` when the run saw no losses, no injected
    /// faults, and no retransmissions.
    pub fn fault_summary_line(&self) -> Option<String> {
        let f = &self.fault_injection;
        let t = &self.transport;
        let r = &self.recovery;
        let d = &self.directory;
        let dir_active =
            self.config.directory.enabled && d.home_hits + d.forwards + d.pruned + d.migrations > 0;
        let quiet = f.injected_drops == 0
            && f.duplicates == 0
            && f.reordered == 0
            && f.partition_drops == 0
            && t.retransmissions == 0
            && self.net.drops == 0
            && r.crashes == 0
            && r.suspicions == 0
            && r.partitions == 0
            && !dir_active
            && !self.config.prefetch.adaptive.enabled;
        if quiet {
            return None;
        }
        use std::fmt::Write as _;
        let mut line = String::with_capacity(256);
        write!(
            line,
            "faults: {} msgs dropped, {} duplicated, {} reordered; \
             transport: {} retransmissions (max {} attempts/frame), \
             {} duplicate frames suppressed; \
             prefetch: {} requests lost, {} replies lost",
            f.injected_drops,
            f.duplicates,
            f.reordered,
            t.retransmissions,
            t.max_attempts,
            t.dup_frames_suppressed,
            self.prefetch.send_drops,
            self.prefetch.reply_drops,
        )
        .expect("write to String");
        if r.crashes > 0 || r.suspicions > 0 || r.recoveries > 0 || r.checkpoints_taken > 0 {
            write!(
                line,
                "; recovery: {} crashes, {} suspicions ({} false), \
                 {} checkpoints ({} bytes), {} recoveries ({} us down)",
                r.crashes,
                r.suspicions,
                r.false_suspicions,
                r.checkpoints_taken,
                r.checkpoint_bytes,
                r.recoveries,
                r.recovery_time.as_micros(),
            )
            .expect("write to String");
        }
        if r.partitions > 0 || f.partition_drops > 0 {
            write!(
                line,
                "; partition: {} cuts, {} frames cut, \
                 {} frozen suspected-but-alive, {} rejoins ({} us reconcile)",
                r.partitions,
                f.partition_drops,
                r.partition_freezes,
                r.partition_rejoins,
                r.partition_reconcile_time.as_micros(),
            )
            .expect("write to String");
        }
        // Gated on the config switch, not the counters: a run without
        // the directory layer must emit the exact pre-directory line.
        if self.config.directory.enabled {
            write!(
                line,
                "; directory: {} home hits, {} heal forwards, \
                 {} notices pruned, {} migrations",
                d.home_hits, d.forwards, d.pruned, d.migrations,
            )
            .expect("write to String");
        }
        // Gated on the config switch, not the counters: a run without
        // persistence must emit the exact pre-persistence line.
        if self.config.recovery.persist.enabled {
            write!(
                line,
                "; persist: {} bytes, {} flushes, {} fences, \
                 {} torn discarded, {} slot fallbacks",
                r.persist_bytes, r.flushes, r.fences, r.torn_discards, r.slot_fallbacks,
            )
            .expect("write to String");
        }
        // Gated on the config switch, not the counters: runs without
        // the adaptive engine must emit the exact pre-adaptive line.
        if self.config.prefetch.adaptive.enabled {
            let a = self.adaptive.unwrap_or_default();
            write!(
                line,
                "; adaptive: {} strides, {} flips, \
                 {} throttle transitions, {} issued, {} cancelled",
                a.detected_strides,
                a.window_flips,
                a.throttle_transitions(),
                a.issued,
                a.cancelled,
            )
            .expect("write to String");
        }
        Some(line)
    }
}

pub(crate) fn fold_counters(
    counters: impl Iterator<Item = (NodeCounters, AccessCounters)>,
) -> (
    MissSummary,
    SyncSummary,
    SyncSummary,
    PrefetchSummary,
    MtSummary,
    u64,
    DirectorySummary,
) {
    let mut miss = MissSummary::default();
    let mut locks = SyncSummary::default();
    let mut barriers = SyncSummary::default();
    let mut pf = PrefetchSummary::default();
    let mut mt = MtSummary::default();
    let mut gc = 0;
    let mut dir = DirectorySummary::default();
    for (c, a) in counters {
        miss.faults += c.faults;
        miss.misses += c.misses;
        miss.latency_sum += c.miss_latency_sum;
        miss.stall_sum += c.miss_stall;
        locks.events += c.lock_events;
        locks.waits += c.lock_waits;
        locks.stall_sum += c.lock_stall;
        barriers.events += c.barrier_events;
        barriers.waits += c.barrier_waits;
        barriers.stall_sum += c.barrier_stall;
        pf.calls += a.pf_calls;
        pf.unnecessary += a.pf_unnecessary;
        pf.suppressed_inflight += a.pf_suppressed_inflight;
        pf.suppressed_flag += a.pf_suppressed_flag;
        pf.throttled += a.pf_throttled;
        pf.private_checks += a.pf_private_checks;
        pf.messages += c.pf_messages;
        pf.send_drops += c.pf_send_drops;
        pf.reply_drops += c.pf_reply_drops;
        pf.hits += c.pf_hit;
        pf.too_late += c.pf_too_late;
        pf.invalidated += c.pf_invalidated;
        pf.no_pf += c.pf_no_pf;
        mt.switches += c.switches;
        mt.run_length_sum += c.run_length_sum;
        mt.run_length_count += c.run_length_count;
        mt.stall_sum += c.miss_stall + c.lock_stall + c.barrier_stall;
        mt.stall_count += c.misses + c.lock_waits + c.barrier_waits;
        gc += c.gc_passes;
        dir.home_hits += c.dir_home_hits;
        dir.forwards += c.dir_forwards;
        dir.pruned += c.dir_pruned;
        dir.migrations += c.dir_migrations;
    }
    (miss, locks, barriers, pf, mt, gc, dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_avg_latency() {
        let m = MissSummary {
            faults: 10,
            misses: 4,
            latency_sum: SimDuration::from_micros(400),
            stall_sum: SimDuration::from_micros(500),
        };
        assert_eq!(m.avg_latency(), SimDuration::from_micros(100));
        assert_eq!(MissSummary::default().avg_latency(), SimDuration::ZERO);
    }

    #[test]
    fn prefetch_coverage() {
        let p = PrefetchSummary {
            hits: 6,
            too_late: 2,
            invalidated: 2,
            no_pf: 10,
            calls: 100,
            unnecessary: 25,
            ..PrefetchSummary::default()
        };
        assert!((p.coverage() - 0.5).abs() < 1e-12);
        assert!((p.unnecessary_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PrefetchSummary::default().coverage(), 0.0);
    }

    #[test]
    fn sync_avg_stall() {
        let s = SyncSummary {
            events: 2,
            waits: 4,
            stall_sum: SimDuration::from_micros(100),
        };
        assert_eq!(s.avg_stall(), SimDuration::from_micros(25));
        assert_eq!(SyncSummary::default().avg_stall(), SimDuration::ZERO);
    }

    #[test]
    fn mt_averages() {
        let m = MtSummary {
            switches: 3,
            run_length_sum: SimDuration::from_micros(90),
            run_length_count: 9,
            stall_sum: SimDuration::from_micros(50),
            stall_count: 5,
        };
        assert_eq!(m.avg_run_length(), SimDuration::from_micros(10));
        assert_eq!(m.avg_stall(), SimDuration::from_micros(10));
    }

    #[test]
    fn error_display() {
        assert!(SimError::TimeLimit.to_string().contains("time limit"));
        assert!(SimError::AppThread("boom".into())
            .to_string()
            .contains("boom"));
        assert!(SimError::Deadlock("x".into())
            .to_string()
            .contains("deadlock"));
    }
}
