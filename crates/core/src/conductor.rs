//! The application-side context and the thread/engine handshake.
//!
//! Every simulated application thread runs on a real OS thread, in
//! strict lockstep with the engine: the engine resumes exactly one
//! thread at a time, the thread computes (accumulating charged time
//! locally) until it needs the DSM — a page fault, a synchronization
//! operation, a prefetch — then sends a [`Syscall`] and blocks until
//! the engine resumes it. This keeps the whole simulation
//! deterministic while letting application code be ordinary Rust.
//!
//! [`DsmCtx`] is the API visible to applications: typed reads/writes
//! on [`SharedVec`] handles, locks, barriers, prefetches, and explicit
//! compute-time charging.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};

use rsdsm_protocol::PageId;
use rsdsm_simnet::SimDuration;

use crate::config::PrefetchConfig;
use crate::costs::CostModel;
use crate::heap::{Pod, SharedVec};
use crate::msg::{BarrierId, LockId};
use crate::node::NodeMem;
use crate::thread::ThreadId;

/// A request from an application thread to the engine.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Syscall {
    /// Access to an invalid page.
    Fault {
        /// The faulted page.
        page: PageId,
        /// Whether the access is a write.
        write: bool,
    },
    /// Acquire a lock.
    Acquire(LockId),
    /// Release a lock.
    Release(LockId),
    /// Arrive at a barrier.
    Barrier(BarrierId),
    /// Issue prefetches for pages that passed the local filters.
    Prefetch(Vec<PageId>),
    /// The thread finished.
    Exit,
}

/// Simulated time accumulated on the thread since its last syscall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Charges {
    /// Useful computation (Busy).
    pub busy: SimDuration,
    /// Protocol work done inline (twin creation) — DSM overhead.
    pub dsm: SimDuration,
    /// Prefetch issue/check overhead.
    pub prefetch: SimDuration,
}

impl Charges {
    /// Total charged time.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn total(&self) -> SimDuration {
        self.busy + self.dsm + self.prefetch
    }
}

/// What a thread sends when it yields to the engine.
#[derive(Debug)]
pub(crate) struct CallMsg {
    /// The request.
    pub syscall: Syscall,
    /// Time accumulated since the last resume.
    pub charges: Charges,
}

/// Limit on fault retries for a single access, to turn protocol
/// livelock bugs into a clear panic rather than a hang.
const MAX_FAULT_RETRIES: u32 = 100_000;

/// The per-thread handle to the simulated DSM.
///
/// Obtained by the engine and passed to
/// [`DsmProgram::run`](crate::DsmProgram::run). All shared-memory
/// access, synchronization and prefetching goes through this context;
/// private data is ordinary Rust data.
#[derive(Debug)]
pub struct DsmCtx {
    tid: ThreadId,
    node: usize,
    num_threads: usize,
    mem: Arc<Mutex<Vec<NodeMem>>>,
    costs: CostModel,
    prefetch_cfg: PrefetchConfig,
    resume_rx: Receiver<()>,
    call_tx: Sender<CallMsg>,
    pending: Charges,
}

impl DsmCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tid: ThreadId,
        node: usize,
        num_threads: usize,
        mem: Arc<Mutex<Vec<NodeMem>>>,
        costs: CostModel,
        prefetch_cfg: PrefetchConfig,
        resume_rx: Receiver<()>,
        call_tx: Sender<CallMsg>,
    ) -> Self {
        DsmCtx {
            tid,
            node,
            num_threads,
            mem,
            costs,
            prefetch_cfg,
            resume_rx,
            call_tx,
            pending: Charges::default(),
        }
    }

    /// Blocks until the engine first resumes this thread. Called once
    /// by the thread shim before entering application code.
    pub(crate) fn wait_start(&self) {
        self.resume_rx
            .recv()
            .expect("engine dropped before thread start");
    }

    /// This thread's global index, `0..num_threads`.
    pub fn thread_id(&self) -> usize {
        self.tid.index()
    }

    /// Total application threads in the run.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The node (processor) this thread runs on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Charges `dur` of useful computation to this thread.
    ///
    /// Applications model their arithmetic with explicit compute
    /// charges (the actual Rust arithmetic runs at native speed and
    /// is not timed).
    pub fn compute(&mut self, dur: SimDuration) {
        self.pending.busy += dur;
    }

    /// Reads element `i` of a shared array.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn read<T: Pod>(&mut self, v: &SharedVec<T>, i: usize) -> T {
        let (page, off) = v.locate(i);
        self.with_valid_page(page, false, |entry| {
            T::read_le(&entry.data.bytes()[off..off + T::BYTES])
        })
    }

    /// Writes element `i` of a shared array.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn write<T: Pod>(&mut self, v: &SharedVec<T>, i: usize, value: T) {
        let (page, off) = v.locate(i);
        self.with_valid_page(page, true, |entry| {
            value.write_le(&mut entry.data.bytes_mut()[off..off + T::BYTES]);
        });
    }

    /// Reads elements `start..start + out.len()` into `out`.
    ///
    /// One page-validity check is performed per page touched, which is
    /// how the real system behaves (a fault per page, not per element).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_slice<T: Pod>(&mut self, v: &SharedVec<T>, start: usize, out: &mut [T]) {
        let spans: Vec<_> = v.locate_range(start, start + out.len()).collect();
        for (page, range) in spans {
            self.with_valid_page(page, false, |entry| {
                for i in range.clone() {
                    let off = i * T::BYTES % rsdsm_protocol::PAGE_SIZE;
                    out[i - start] = T::read_le(&entry.data.bytes()[off..off + T::BYTES]);
                }
            });
        }
    }

    /// Writes `values` to elements `start..start + values.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_slice<T: Pod>(&mut self, v: &SharedVec<T>, start: usize, values: &[T]) {
        let spans: Vec<_> = v.locate_range(start, start + values.len()).collect();
        for (page, range) in spans {
            self.with_valid_page(page, true, |entry| {
                for i in range.clone() {
                    let off = i * T::BYTES % rsdsm_protocol::PAGE_SIZE;
                    values[i - start].write_le(&mut entry.data.bytes_mut()[off..off + T::BYTES]);
                }
            });
        }
    }

    /// Reads a range as a new vector (convenience over
    /// [`DsmCtx::read_slice`]).
    pub fn read_vec<T: Pod>(&mut self, v: &SharedVec<T>, start: usize, len: usize) -> Vec<T> {
        let mut out = vec![T::default(); len];
        self.read_slice(v, start, &mut out);
        out
    }

    /// Acquires a lock, blocking until granted.
    pub fn acquire(&mut self, lock: LockId) {
        self.syscall(Syscall::Acquire(lock));
    }

    /// Releases a lock this thread holds.
    ///
    /// # Panics
    ///
    /// The engine panics the run if the thread does not hold the lock.
    pub fn release(&mut self, lock: LockId) {
        self.syscall(Syscall::Release(lock));
    }

    /// Arrives at a barrier, blocking until all threads arrive.
    pub fn barrier(&mut self, id: BarrierId) {
        self.syscall(Syscall::Barrier(id));
    }

    /// Issues non-binding prefetches for the pages backing elements
    /// `start..end` of `v`.
    ///
    /// When prefetching is disabled in the run configuration this is a
    /// free no-op, so applications always contain their prefetch
    /// annotations and the experiment harness switches them on or off.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn prefetch<T: Pod>(&mut self, v: &SharedVec<T>, start: usize, end: usize) {
        if !self.prefetch_cfg.honors_annotations() {
            return;
        }
        let pages = v.pages_for_range(start, end);
        let mut to_issue = Vec::new();
        {
            let mut mem = self.mem.lock().expect("mem mutex");
            let m = &mut mem[self.node];
            for page in pages {
                m.counters.pf_calls += 1;
                self.pending.prefetch += self.costs.prefetch_check;
                if m.pages[page.index()].valid {
                    m.counters.pf_unnecessary += 1;
                    continue;
                }
                if m.prefetch_inflight.contains_key(&page) {
                    m.counters.pf_suppressed_inflight += 1;
                    continue;
                }
                if self.prefetch_cfg.suppress_redundant && m.epoch_prefetched.contains(&page) {
                    m.counters.pf_suppressed_flag += 1;
                    continue;
                }
                m.throttle_seq += 1;
                if self.prefetch_cfg.throttle > 1
                    && !m
                        .throttle_seq
                        .is_multiple_of(self.prefetch_cfg.throttle as u64)
                {
                    m.counters.pf_throttled += 1;
                    continue;
                }
                if self.prefetch_cfg.suppress_redundant {
                    m.epoch_prefetched.insert(page);
                }
                to_issue.push(page);
            }
        }
        if !to_issue.is_empty() {
            self.syscall(Syscall::Prefetch(to_issue));
        }
    }

    /// Emulates compiler-issued prefetch checks on private data
    /// (`count` page checks that always find the data locally). A
    /// no-op unless the run uses compiler-style prefetching; see
    /// Table 1's FFT and LU-NCONT rows.
    pub fn prefetch_private(&mut self, count: usize) {
        if !self.prefetch_cfg.honors_annotations() || !self.prefetch_cfg.compiler_style {
            return;
        }
        self.pending.prefetch += self.costs.prefetch_check * count as u64;
        let mut mem = self.mem.lock().expect("mem mutex");
        let m = &mut mem[self.node];
        m.counters.pf_calls += count as u64;
        m.counters.pf_unnecessary += count as u64;
        m.counters.pf_private_checks += count as u64;
    }

    /// Signals the engine that this thread finished. Called by the
    /// thread shim after application code returns.
    pub(crate) fn exit(&mut self) {
        let charges = std::mem::take(&mut self.pending);
        // Exit is fire-and-forget: the engine marks the thread done
        // and never resumes it.
        let _ = self.call_tx.send(CallMsg {
            syscall: Syscall::Exit,
            charges,
        });
    }

    /// Runs `body` on a valid copy of `page`, faulting (and retrying)
    /// as needed. Charges fast-path access costs.
    fn with_valid_page<R>(
        &mut self,
        page: PageId,
        write: bool,
        mut body: impl FnMut(&mut crate::node::PageEntry) -> R,
    ) -> R {
        let mut retries = 0;
        loop {
            {
                let mut mem = self.mem.lock().expect("mem mutex");
                let m = &mut mem[self.node];
                if m.pages[page.index()].valid {
                    m.counters.fast_accesses += 1;
                    self.pending.busy += self.costs.access_check;
                    if write && m.pages[page.index()].twin.is_none() {
                        // Split borrows: the twin buffer comes from the
                        // node's page pool, not a fresh zeroing allocation.
                        let crate::node::NodeMem { pages, pool, .. } = &mut *m;
                        let entry = &mut pages[page.index()];
                        entry.twin = Some(pool.take_arc_copy_of(&entry.data));
                        self.pending.dsm += self.costs.twin_create;
                        m.dirty.push(page);
                        if m.twin_log_on {
                            m.twin_log.push(page);
                        }
                    }
                    return body(&mut m.pages[page.index()]);
                }
            }
            retries += 1;
            assert!(
                retries < MAX_FAULT_RETRIES,
                "page {page} never became valid after {retries} faults"
            );
            self.syscall(Syscall::Fault { page, write });
        }
    }

    /// Flushes pending charges with `syscall` and blocks until the
    /// engine resumes this thread.
    fn syscall(&mut self, syscall: Syscall) {
        let charges = std::mem::take(&mut self.pending);
        self.call_tx
            .send(CallMsg { syscall, charges })
            .expect("engine dropped mid-run");
        self.resume_rx.recv().expect("engine dropped mid-run");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_total() {
        let c = Charges {
            busy: SimDuration::from_micros(3),
            dsm: SimDuration::from_micros(2),
            prefetch: SimDuration::from_micros(1),
        };
        assert_eq!(c.total(), SimDuration::from_micros(6));
    }
}
