//! The modeled reliable transport.
//!
//! The seed engine treated "reliable" delivery as a property of the
//! wire: control messages were simply never lost. With fault injection
//! in the network layer ([`rsdsm_simnet::FaultPlan`]) that idealization
//! no longer holds, so reliability is now *earned* the way TreadMarks
//! earned it over UDP — with sequence numbers, acknowledgements,
//! retransmission timers, and exponential backoff:
//!
//! - Every reliable message on a directed (src, dst) link is assigned
//!   a sequence number and kept by the sender until acknowledged.
//! - The receiver acknowledges every data frame it sees (duplicates
//!   included, since a retransmission means the previous ack may have
//!   been lost), suppresses duplicates, and buffers out-of-order
//!   frames so the protocol above observes per-link FIFO delivery even
//!   when the fault plan reorders the wire.
//! - An unacknowledged frame is retransmitted after a timeout that
//!   doubles on each attempt up to [`TransportConfig::max_rto`]; after
//!   [`TransportConfig::max_retries`] retransmissions the run aborts
//!   with [`SimError::Transport`](crate::SimError::Transport).
//! - The timeout adapts to the link: every acknowledgement feeds a
//!   smoothed round-trip-time estimate, and both the timeout for new
//!   frames and the backoff ceiling are floored at twice that
//!   estimate. Without this, congestion-induced queueing delay (which
//!   on the modeled FIFO links can reach seconds under hot-spotting)
//!   would masquerade as loss and exhaust the retry budget even on a
//!   fault-free network. Samples from retransmitted frames are
//!   ambiguous (Karn's problem) but are measured from the *first*
//!   transmission and therefore only ever overestimate, so they are
//!   allowed to raise the estimate and never to lower it.
//!
//! Prefetch traffic deliberately bypasses all of this: the paper sends
//! prefetches as droppable datagrams and never retries them (§3.1
//! footnote 3 — retrying under congestion worsens congestion).
//!
//! This module is the pure state machine; the engine owns the clock,
//! charges CPU costs for every (re)transmission and ack, and puts the
//! frames on the simulated network.

use std::collections::{BTreeMap, HashMap};

use rsdsm_simnet::{NodeId, SimDuration, SimTime};

use std::sync::Arc;

use crate::msg::MsgBody;

/// Parameters of the reliable transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportConfig {
    /// Floor of the retransmission timeout for a frame's first
    /// transmission; raised to twice the link's smoothed round-trip
    /// time once acks have been observed.
    pub initial_rto: SimDuration,
    /// Ceiling on the backed-off retransmission timeout; also raised
    /// to twice the smoothed round-trip time when congestion pushes
    /// the measured RTT above it.
    pub max_rto: SimDuration,
    /// Retransmissions allowed per frame before the transport gives
    /// up and the run aborts.
    pub max_retries: u32,
    /// Wire size of an acknowledgement frame.
    pub ack_bytes: u32,
}

impl Default for TransportConfig {
    /// Defaults sized for the simulated 155 Mbps ATM LAN: the initial
    /// timeout sits an order of magnitude above the ~0.5 ms remote
    /// miss round trip, so fault-free runs at calibrated load never
    /// retransmit. The backoff ceiling is deliberately large — with
    /// 12 retries it tolerates ~10 s of total silence before giving
    /// up — because hot-spot congestion can park acknowledgements
    /// behind seconds of queued data on a FIFO link; a frame must
    /// only be declared dead on genuine loss, never on queueing
    /// delay (TCP's give-up threshold is minutes for the same
    /// reason).
    fn default() -> Self {
        TransportConfig {
            initial_rto: SimDuration::from_millis(4),
            max_rto: SimDuration::from_secs(2),
            max_retries: 12,
            ack_bytes: 28,
        }
    }
}

/// What travels the wire: reliable data, unreliable datagrams, acks.
///
/// Message bodies are `Arc`-shared, not owned: the engine builds a
/// body once per logical message, and the retransmit buffer, every
/// in-flight frame (fault-plan duplicates included), and the receive
/// path all hold references to that one allocation.
#[derive(Debug)]
pub(crate) enum Frame {
    /// A sequenced reliable message.
    Data {
        /// Per-(src, dst) sequence number.
        seq: u64,
        /// The protocol message.
        body: Arc<MsgBody>,
    },
    /// An unsequenced, unacknowledged message (prefetch traffic).
    Datagram {
        /// The protocol message.
        body: Arc<MsgBody>,
    },
    /// Acknowledgement of one data frame (sent dst → src).
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Explicit failure-detector heartbeat, sent only on links with
    /// no recent outbound traffic (any frame refreshes the peer's
    /// lease, so data and acks act as implicit heartbeats).
    /// Unsequenced and droppable, like a datagram.
    Heartbeat,
}

/// A frame in flight between two nodes.
#[derive(Debug)]
pub(crate) struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload.
    pub frame: Frame,
    /// Trace record id of the `MsgSend` that put this frame on the
    /// wire (0 when tracing is off). Lets the receive side link its
    /// `MsgRecv` record to the exact transmission — including
    /// retransmissions and fault-plan duplicates — without guessing.
    pub cause: u64,
}

/// Per-run transport tallies, surfaced in
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSummary {
    /// Reliable messages accepted for delivery (first transmissions).
    pub data_frames: u64,
    /// Timeout-driven retransmissions.
    pub retransmissions: u64,
    /// Acknowledgement frames generated.
    pub acks_sent: u64,
    /// Duplicate data frames suppressed at the receiver.
    pub dup_frames_suppressed: u64,
    /// Frames that arrived out of order and were buffered.
    pub buffered_out_of_order: u64,
    /// Retry timers that fired after their frame was already acked.
    pub spurious_timeouts: u64,
    /// Most transmissions any single frame needed.
    pub max_attempts: u32,
}

/// Sender-side record of an unacknowledged frame.
#[derive(Debug)]
struct Inflight<B> {
    body: B,
    /// Transmissions so far (1 = original send).
    attempts: u32,
    /// Timeout armed for the latest transmission.
    rto: SimDuration,
    /// When the frame was first transmitted (RTT sampling).
    sent_at: SimTime,
}

/// Both endpoints' state for one directed (src, dst) link.
#[derive(Debug)]
struct LinkState<B> {
    /// Next sequence number the sender will assign.
    next_seq: u64,
    /// Unacknowledged frames, by sequence number.
    inflight: BTreeMap<u64, Inflight<B>>,
    /// Smoothed round-trip time observed from acks on this link.
    srtt: Option<SimDuration>,
    /// Next sequence number the receiver will deliver.
    recv_next: u64,
    /// Out-of-order frames parked until the gap fills.
    recv_buf: BTreeMap<u64, B>,
}

impl<B> Default for LinkState<B> {
    fn default() -> Self {
        LinkState {
            next_seq: 0,
            inflight: BTreeMap::new(),
            srtt: None,
            recv_next: 0,
            recv_buf: BTreeMap::new(),
        }
    }
}

impl<B> LinkState<B> {
    /// The timeout for a fresh transmission: the configured floor, or
    /// twice the smoothed RTT once the link has been measured.
    fn base_rto(&self, cfg: &TransportConfig) -> SimDuration {
        match self.srtt {
            Some(s) => cfg.initial_rto.max(s * 2),
            None => cfg.initial_rto,
        }
    }
}

/// What the sender should do when a retry timer fires.
#[derive(Debug)]
pub enum TimeoutAction<B> {
    /// The frame was acked in the meantime; the timer is stale.
    Cancelled,
    /// Retransmit the frame and re-arm the (backed-off) timer.
    Retransmit {
        /// The frame body to resend.
        body: B,
        /// The timeout to arm for this transmission.
        rto: SimDuration,
    },
    /// The retry budget is exhausted. With recovery disabled the run
    /// aborts (the pre-recovery behavior); with recovery enabled the
    /// engine parks the frame and suspects the peer instead.
    Exhausted {
        /// Total transmissions attempted.
        attempts: u32,
    },
}

/// What the receiver should do with an arriving data frame.
#[derive(Debug)]
pub enum Recv<B> {
    /// Deliver this in-order run of messages to the protocol.
    Deliver(Vec<B>),
    /// Out of order; parked until the gap fills.
    Buffered,
    /// Already delivered or already parked; suppressed.
    Duplicate,
}

/// The reliable-transport state machine for every directed link.
///
/// Generic over the message body `B` it carries so tests (notably the
/// simnet property tests) can exercise it with simple payloads; the
/// engine instantiates it with its internal protocol message type.
#[derive(Debug)]
pub struct Transport<B> {
    cfg: TransportConfig,
    links: HashMap<(NodeId, NodeId), LinkState<B>>,
    summary: TransportSummary,
}

impl<B: Clone> Transport<B> {
    /// Creates a transport with no links established yet.
    pub fn new(cfg: TransportConfig) -> Self {
        Transport {
            cfg,
            links: HashMap::new(),
            summary: TransportSummary::default(),
        }
    }

    /// Accepts a reliable message for transmission on (src, dst):
    /// assigns its sequence number and records it as inflight.
    /// Returns the sequence number and the timeout to arm.
    pub fn register(
        &mut self,
        src: NodeId,
        dst: NodeId,
        body: B,
        now: SimTime,
    ) -> (u64, SimDuration) {
        let link = self.links.entry((src, dst)).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        let rto = link.base_rto(&self.cfg);
        link.inflight.insert(
            seq,
            Inflight {
                body,
                attempts: 1,
                rto,
                sent_at: now,
            },
        );
        self.summary.data_frames += 1;
        self.summary.max_attempts = self.summary.max_attempts.max(1);
        (seq, rto)
    }

    /// Handles a fired retry timer for (src, dst, seq).
    pub fn on_timeout(&mut self, src: NodeId, dst: NodeId, seq: u64) -> TimeoutAction<B> {
        let Some(link) = self.links.get_mut(&(src, dst)) else {
            return TimeoutAction::Cancelled;
        };
        // The backoff ceiling tracks the link's measured RTT so a
        // congested-but-lossless link keeps stretching the timer
        // instead of burning through the retry budget.
        let cap = match link.srtt {
            Some(s) => self.cfg.max_rto.max(s * 2),
            None => self.cfg.max_rto,
        };
        let Some(inf) = link.inflight.get_mut(&seq) else {
            self.summary.spurious_timeouts += 1;
            return TimeoutAction::Cancelled;
        };
        if inf.attempts > self.cfg.max_retries {
            return TimeoutAction::Exhausted {
                attempts: inf.attempts,
            };
        }
        inf.attempts += 1;
        inf.rto = (inf.rto * 2).min(cap);
        self.summary.retransmissions += 1;
        self.summary.max_attempts = self.summary.max_attempts.max(inf.attempts);
        TimeoutAction::Retransmit {
            body: inf.body.clone(),
            rto: inf.rto,
        }
    }

    /// Restores the retry budget of a frame that was parked after
    /// exhausting its retries toward a crashed (or falsely suspected)
    /// peer: the attempt count and timeout reset as if freshly sent,
    /// so the engine can re-arm a retry timer. Returns the timeout to
    /// arm, or `None` when the frame was acked in the meantime.
    pub fn reset_frame(&mut self, src: NodeId, dst: NodeId, seq: u64) -> Option<SimDuration> {
        let link = self.links.get_mut(&(src, dst))?;
        let rto = link.base_rto(&self.cfg);
        let inf = link.inflight.get_mut(&seq)?;
        inf.attempts = 1;
        inf.rto = rto;
        Some(rto)
    }

    /// Handles an acknowledgement arriving at the data sender `src`
    /// from the data receiver `dst`, feeding the link's RTT estimate.
    /// Stale and duplicate acks are ignored.
    pub fn on_ack(&mut self, src: NodeId, dst: NodeId, seq: u64, now: SimTime) {
        let Some(link) = self.links.get_mut(&(src, dst)) else {
            return;
        };
        let Some(inf) = link.inflight.remove(&seq) else {
            return;
        };
        let sample = now.saturating_since(inf.sent_at);
        let smoothed = match link.srtt {
            None => sample,
            Some(s) => (s * 7 + sample) / 8,
        };
        // Karn's rule, relaxed in the safe direction: a retransmitted
        // frame's sample is ambiguous, but it is measured from the
        // first transmission and so can only overestimate — let it
        // raise the estimate, never lower it.
        link.srtt = Some(if inf.attempts > 1 {
            match link.srtt {
                Some(s) => s.max(smoothed),
                None => smoothed,
            }
        } else {
            smoothed
        });
    }

    /// Books an ack frame the receiver generated.
    pub fn note_ack_sent(&mut self) {
        self.summary.acks_sent += 1;
    }

    /// Handles a data frame arriving at `dst` from `src`, restoring
    /// per-link FIFO order and suppressing duplicates.
    pub fn receive(&mut self, src: NodeId, dst: NodeId, seq: u64, body: B) -> Recv<B> {
        let link = self.links.entry((src, dst)).or_default();
        if seq < link.recv_next || link.recv_buf.contains_key(&seq) {
            self.summary.dup_frames_suppressed += 1;
            return Recv::Duplicate;
        }
        if seq != link.recv_next {
            link.recv_buf.insert(seq, body);
            self.summary.buffered_out_of_order += 1;
            return Recv::Buffered;
        }
        let mut run = vec![body];
        link.recv_next += 1;
        while let Some(next) = link.recv_buf.remove(&link.recv_next) {
            run.push(next);
            link.recv_next += 1;
        }
        Recv::Deliver(run)
    }

    /// Frames currently awaiting acknowledgement across all links.
    pub fn inflight_frames(&self) -> usize {
        self.links.values().map(|l| l.inflight.len()).sum()
    }

    /// The cumulative per-run tallies.
    pub fn summary(&self) -> TransportSummary {
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::LockId;
    use rsdsm_protocol::VectorClock;

    fn body(tag: u32) -> MsgBody {
        MsgBody::LockRequest {
            lock: LockId(tag),
            requester: 0,
            vc: VectorClock::new(2),
        }
    }

    fn cfg() -> TransportConfig {
        TransportConfig {
            initial_rto: SimDuration::from_millis(1),
            max_rto: SimDuration::from_millis(4),
            max_retries: 2,
            ack_bytes: 28,
        }
    }

    #[test]
    fn sequences_are_per_directed_link() {
        let mut t = Transport::new(cfg());
        let t0 = SimTime::ZERO;
        assert_eq!(t.register(0, 1, body(0), t0).0, 0);
        assert_eq!(t.register(0, 1, body(1), t0).0, 1);
        assert_eq!(
            t.register(1, 0, body(2), t0).0,
            0,
            "reverse link independent"
        );
        assert_eq!(t.register(0, 2, body(3), t0).0, 0, "other link independent");
        assert_eq!(t.inflight_frames(), 4);
    }

    #[test]
    fn in_order_frames_deliver_immediately() {
        let mut t = Transport::new(cfg());
        assert!(matches!(t.receive(0, 1, 0, body(0)), Recv::Deliver(run) if run.len() == 1));
        assert!(matches!(t.receive(0, 1, 1, body(1)), Recv::Deliver(run) if run.len() == 1));
    }

    #[test]
    fn reordered_frames_are_buffered_and_released_in_order() {
        let mut t = Transport::new(cfg());
        assert!(matches!(t.receive(0, 1, 2, body(2)), Recv::Buffered));
        assert!(matches!(t.receive(0, 1, 1, body(1)), Recv::Buffered));
        match t.receive(0, 1, 0, body(0)) {
            Recv::Deliver(run) => {
                let tags: Vec<_> = run
                    .iter()
                    .map(|b| match b {
                        MsgBody::LockRequest { lock, .. } => lock.0,
                        _ => unreachable!(),
                    })
                    .collect();
                assert_eq!(tags, vec![0, 1, 2], "gap fill releases the full run");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(t.summary().buffered_out_of_order, 2);
    }

    #[test]
    fn duplicates_are_suppressed_everywhere() {
        let mut t = Transport::new(cfg());
        assert!(matches!(t.receive(0, 1, 0, body(0)), Recv::Deliver(_)));
        assert!(matches!(t.receive(0, 1, 0, body(0)), Recv::Duplicate));
        assert!(matches!(t.receive(0, 1, 2, body(2)), Recv::Buffered));
        assert!(matches!(t.receive(0, 1, 2, body(2)), Recv::Duplicate));
        assert_eq!(t.summary().dup_frames_suppressed, 2);
    }

    #[test]
    fn ack_cancels_retry_and_timer_is_lazily_discarded() {
        let mut t = Transport::new(cfg());
        let (seq, _) = t.register(0, 1, body(0), SimTime::ZERO);
        t.on_ack(0, 1, seq, SimTime::from_micros(500));
        assert_eq!(t.inflight_frames(), 0);
        assert!(matches!(t.on_timeout(0, 1, seq), TimeoutAction::Cancelled));
        assert_eq!(t.summary().spurious_timeouts, 1);
        // A duplicate ack (retransmit raced the first ack) is a no-op.
        t.on_ack(0, 1, seq, SimTime::from_micros(600));
    }

    #[test]
    fn backoff_doubles_then_caps_then_exhausts() {
        let mut t = Transport::new(cfg());
        let (seq, rto0) = t.register(0, 1, body(0), SimTime::ZERO);
        assert_eq!(rto0, SimDuration::from_millis(1));
        let TimeoutAction::Retransmit { rto, .. } = t.on_timeout(0, 1, seq) else {
            panic!("expected retransmit");
        };
        assert_eq!(rto, SimDuration::from_millis(2));
        let TimeoutAction::Retransmit { rto, .. } = t.on_timeout(0, 1, seq) else {
            panic!("expected retransmit");
        };
        assert_eq!(rto, SimDuration::from_millis(4), "capped at max_rto");
        let TimeoutAction::Exhausted { attempts } = t.on_timeout(0, 1, seq) else {
            panic!("expected exhaustion after max_retries retransmissions");
        };
        assert_eq!(attempts, 3);
        assert_eq!(t.summary().retransmissions, 2);
        assert_eq!(t.summary().max_attempts, 3);
    }

    #[test]
    fn rtt_estimate_raises_timeouts_on_slow_links() {
        let mut t = Transport::new(cfg());
        // A clean (unretransmitted) ack 100 ms after the send: the
        // link is slow but lossless, so both the fresh-frame timeout
        // and the backoff ceiling must stretch well past max_rto.
        let (seq, _) = t.register(0, 1, body(0), SimTime::ZERO);
        t.on_ack(0, 1, seq, SimTime::from_millis(100));
        let (seq, rto) = t.register(0, 1, body(1), SimTime::from_millis(100));
        assert_eq!(rto, SimDuration::from_millis(200), "2 x srtt");
        let TimeoutAction::Retransmit { rto, .. } = t.on_timeout(0, 1, seq) else {
            panic!("expected retransmit");
        };
        assert_eq!(
            rto,
            SimDuration::from_millis(200),
            "backoff ceiling follows the measured RTT, not max_rto"
        );
    }

    #[test]
    fn retransmitted_samples_raise_but_never_lower_the_estimate() {
        let mut t = Transport::new(cfg());
        // Establish srtt = 100 ms from a clean sample.
        let (seq, _) = t.register(0, 1, body(0), SimTime::ZERO);
        t.on_ack(0, 1, seq, SimTime::from_millis(100));
        // A retransmitted frame acked quickly must not drag the
        // estimate down (the ack may answer the first transmission).
        let (seq, _) = t.register(0, 1, body(1), SimTime::from_millis(100));
        assert!(matches!(
            t.on_timeout(0, 1, seq),
            TimeoutAction::Retransmit { .. }
        ));
        t.on_ack(0, 1, seq, SimTime::from_millis(101));
        let (_, rto) = t.register(0, 1, body(2), SimTime::from_millis(101));
        assert_eq!(
            rto,
            SimDuration::from_millis(200),
            "estimate held at 100 ms"
        );
        // But a retransmitted frame acked *late* may raise it: the
        // first-transmission timestamp only overestimates.
        let (seq, _) = t.register(0, 1, body(3), SimTime::from_millis(101));
        assert!(matches!(
            t.on_timeout(0, 1, seq),
            TimeoutAction::Retransmit { .. }
        ));
        t.on_ack(0, 1, seq, SimTime::from_millis(1101));
        let (_, rto) = t.register(0, 1, body(4), SimTime::from_millis(1101));
        assert!(
            rto > SimDuration::from_millis(200),
            "late ambiguous sample raised the estimate (rto = {rto})"
        );
    }
}
