//! Per-node runtime state.
//!
//! Node state is split in two:
//!
//! - [`NodeMem`] is the part application threads touch directly on the
//!   fast path (page data, validity, twins, prefetch bookkeeping); it
//!   lives behind a mutex shared with the per-thread contexts.
//! - [`NodeState`] is the engine-only protocol state: vector clock,
//!   notice board, diff storage, in-flight fetches, locks, barriers,
//!   scheduler and accounting.

use std::collections::HashMap;
use std::sync::Arc;

use rsdsm_protocol::{Diff, DiffCache, NoticeBoard, Page, PageId, PagePool, VectorClock};
use rsdsm_simnet::{NodeId, SimDuration, SimTime};

use crate::accounting::NodeAccount;
use crate::barrier::NodeBarrier;
use crate::lock::LockTable;
use crate::msg::{BasePayload, DiffPayload, IntervalRecord};
use crate::prefetch::{AdaptiveConfig, AdaptiveStats, StrideDetector, ThrottleController};
use crate::thread::{Scheduler, ThreadId};

/// One page slot in a node's memory.
#[derive(Debug, Clone)]
pub(crate) struct PageEntry {
    /// The node's copy of the page contents (possibly stale when
    /// invalid).
    pub data: Page,
    /// Whether the copy may be accessed.
    pub valid: bool,
    /// Whether the node ever held a valid copy; first-touch fetches
    /// need a full base copy from the home node.
    pub ever_valid: bool,
    /// Clean pre-modification copy; present exactly while the page is
    /// dirty in the node's open interval. An `Arc` frame so a base
    /// reply built from the twin shares it zero-copy; mutation goes
    /// through `Arc::make_mut`, which un-shares first (copy-on-write).
    pub twin: Option<Arc<Page>>,
}

impl PageEntry {
    fn new(valid: bool) -> Self {
        PageEntry {
            data: Page::new(),
            valid,
            ever_valid: valid,
            twin: None,
        }
    }
}

/// Fast-path counters incremented by application threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessCounters {
    /// Prefetch operations executed (per page named).
    pub pf_calls: u64,
    /// Prefetches that found their data locally (Table 1
    /// "unnecessary prefetches").
    pub pf_unnecessary: u64,
    /// Prefetches dropped because a request was already in flight.
    pub pf_suppressed_inflight: u64,
    /// Prefetches suppressed by the §5.1 redundant-prefetch flag.
    pub pf_suppressed_flag: u64,
    /// Prefetches dropped by throttling (§5.1).
    pub pf_throttled: u64,
    /// Wasted checks emulating compiler-issued prefetches on private
    /// data (FFT / LU-NCONT in Table 1).
    pub pf_private_checks: u64,
    /// Shared-memory accesses that took the fast path.
    pub fast_accesses: u64,
}

/// The application-visible memory of one node.
#[derive(Debug)]
pub(crate) struct NodeMem {
    /// Page slots indexed by global page id.
    pub pages: Vec<PageEntry>,
    /// Pages with outstanding prefetch requests (count per page).
    pub prefetch_inflight: HashMap<PageId, u32>,
    /// Pages prefetched this barrier epoch (redundant-prefetch flag).
    pub epoch_prefetched: std::collections::HashSet<PageId>,
    /// Rolling sequence for prefetch throttling.
    pub throttle_seq: u64,
    /// Pages twinned since the last interval close, in twin-creation
    /// order (may contain stale entries whose twin was already
    /// dropped by a prefetch-induced interval split).
    pub dirty: Vec<PageId>,
    /// Twin creations since the engine last drained them into the
    /// event trace, in creation order. Only populated when
    /// `twin_log_on` — kept empty otherwise so untraced runs do no
    /// extra work.
    pub twin_log: Vec<PageId>,
    /// Whether twin creations should be logged for tracing.
    pub twin_log_on: bool,
    /// Free list recycling twin/checkpoint page buffers so the hot
    /// write-fault path avoids a zero-initializing allocation.
    pub pool: PagePool,
    /// Fast-path counters.
    pub counters: AccessCounters,
}

impl NodeMem {
    /// Memory for a node in a heap of `total_pages`, where
    /// `is_home(p)` says whether the node homes page `p` (homed pages
    /// start valid and zero-filled).
    pub fn new(total_pages: usize, is_home: impl Fn(usize) -> bool) -> Self {
        NodeMem {
            pages: (0..total_pages)
                .map(|p| PageEntry::new(is_home(p)))
                .collect(),
            prefetch_inflight: HashMap::new(),
            epoch_prefetched: std::collections::HashSet::new(),
            throttle_seq: 0,
            dirty: Vec::new(),
            twin_log: Vec::new(),
            twin_log_on: false,
            pool: PagePool::new(),
            counters: AccessCounters::default(),
        }
    }
}

/// A synchronization object, as the key of the automatic
/// prefetcher's access-pattern history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKey {
    /// A lock acquisition point.
    Lock(crate::msg::LockId),
    /// A barrier release point.
    Barrier(crate::msg::BarrierId),
}

/// How a page fault relates to prefetching — the categories of
/// Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// The page had not been prefetched.
    NoPf,
    /// Prefetched data fully covered the fault (no messages needed).
    Hit,
    /// Prefetch issued but replies had not arrived (or were dropped).
    TooLate,
    /// Prefetched data was invalidated by notices that arrived after
    /// the prefetch was issued.
    Invalidated,
}

/// Per-node state of the adaptive prefetch engine (see
/// [`crate::prefetch`]). Constructed only when
/// [`AdaptiveConfig::enabled`] is set — `None` otherwise, so disabled
/// runs carry no adaptive state at all.
#[derive(Debug)]
pub(crate) struct AdaptiveNode {
    /// One stride detector per local application thread; each is
    /// reset at the thread's lock/barrier acquisitions so every
    /// (thread, lock-epoch) stream is scored independently.
    pub detectors: Vec<StrideDetector>,
    /// Per-thread streaming high-water mark: `(stride, furthest)` of
    /// the pages already planned under the current trend. Successive
    /// faults on a stride stream only extend the planned range past
    /// `furthest` (steady state: one new issue per fault) instead of
    /// re-issuing the whole overlapping lookahead window every fault.
    /// Cleared whenever the trend changes and at epoch boundaries
    /// (pages invalidated by the next interval must be re-planned).
    pub planned: Vec<Option<(i64, i64)>>,
    /// Per-thread count of trend flips: each one means a previously
    /// confirmed majority turned out wrong. Scales the probation
    /// below exponentially — a stream that keeps flipping (an access
    /// pattern no stride model fits) is trusted less and less.
    pub flips: Vec<u32>,
    /// Per-thread faults remaining before the stream's current trend
    /// is trusted enough to issue on: 1 after a fresh detection,
    /// `2^flips` after a flip. Wrong-way windows fetched on a
    /// short-lived majority are load the §3.3 feedback can never
    /// attribute (pages nobody faults on are neither hits nor
    /// misses), so they must be prevented, not corrected.
    pub probation: Vec<u32>,
    /// The node-wide feedback throttle over (degree, lead).
    pub throttle: ThrottleController,
    /// This node's share of the run-level adaptive counters.
    pub stats: AdaptiveStats,
}

impl AdaptiveNode {
    /// Fresh adaptive state for a node with `threads_on_node` local
    /// threads.
    pub fn new(cfg: &AdaptiveConfig, threads_on_node: usize) -> Self {
        AdaptiveNode {
            detectors: (0..threads_on_node)
                .map(|_| StrideDetector::new(cfg.window))
                .collect(),
            planned: vec![None; threads_on_node],
            flips: vec![0; threads_on_node],
            probation: vec![0; threads_on_node],
            throttle: ThrottleController::new(cfg),
            stats: AdaptiveStats::default(),
        }
    }
}

/// An in-progress remote page fetch (fault-driven).
#[derive(Debug)]
pub(crate) struct Fetch {
    /// Replies still outstanding.
    pub outstanding: usize,
    /// Threads blocked on this page.
    pub waiters: Vec<ThreadId>,
    /// Diffs collected so far.
    pub collected: Vec<DiffPayload>,
    /// Base page copy, when this is a first-touch fetch.
    pub base: Option<BasePayload>,
    /// Whether a base copy is still expected.
    pub base_pending: bool,
    /// When the fault occurred (for miss latency accounting).
    pub started: SimTime,
    /// True for a too-late join: every missing piece is already on
    /// the wire as a *reliable* adaptive prefetch, so this fetch
    /// consumes those replies instead of duplicating the requests
    /// through an already-loaded server. `outstanding` then counts
    /// in-flight prefetch replies, not demand replies.
    pub joined: bool,
}

/// Prefetch bookkeeping for one page (engine side).
#[derive(Debug, Clone, Default)]
pub(crate) struct PfMeta {
    /// (origin, origin-sequence) pairs whose diffs were requested.
    pub requested: std::collections::HashSet<(NodeId, u32)>,
    /// Whether a base copy was requested.
    pub wanted_base: bool,
    /// True while *every* request for this page was adaptive (and
    /// therefore reliable). Only then may a too-late fault join the
    /// in-flight replies instead of re-requesting: joining a
    /// droppable static prefetch could wait forever.
    pub all_adaptive: bool,
}

/// Engine-side statistics counters for one node.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeCounters {
    /// Page faults entering the protocol (any class).
    pub faults: u64,
    /// Faults requiring remote messages ("remote misses").
    pub misses: u64,
    /// Sum of fault-to-completion latencies for remote misses.
    pub miss_latency_sum: SimDuration,
    /// Per-thread memory stall time (block to wake).
    pub miss_stall: SimDuration,
    /// Remote lock acquisitions (token requested over the network).
    pub lock_events: u64,
    /// Per-thread lock stall time.
    pub lock_stall: SimDuration,
    /// Lock stall occurrences (blocked acquires, local or remote).
    pub lock_waits: u64,
    /// Barrier episodes participated in.
    pub barrier_events: u64,
    /// Per-thread barrier stall time.
    pub barrier_stall: SimDuration,
    /// Barrier stall occurrences.
    pub barrier_waits: u64,
    /// Context switches taken.
    pub switches: u64,
    /// Sum of busy run lengths between stalls.
    pub run_length_sum: SimDuration,
    /// Number of runs measured.
    pub run_length_count: u64,
    /// Fault classification tallies (Figure 3).
    pub pf_hit: u64,
    /// See [`MissClass::TooLate`].
    pub pf_too_late: u64,
    /// See [`MissClass::Invalidated`].
    pub pf_invalidated: u64,
    /// See [`MissClass::NoPf`].
    pub pf_no_pf: u64,
    /// Prefetch request messages sent.
    pub pf_messages: u64,
    /// Prefetch requests dropped at send time by the network.
    pub pf_send_drops: u64,
    /// Prefetch replies this node served that the network dropped
    /// (the requester falls back to a demand fault).
    pub pf_reply_drops: u64,
    /// Garbage collection passes performed.
    pub gc_passes: u64,
    /// Directory mode: fetch requests this node served for pages it
    /// homes (directory hot-spotting shows up here).
    pub dir_home_hits: u64,
    /// Directory mode: full interval records the home re-served to
    /// heal a requester whose pruned notice board lacked the page's
    /// history.
    pub dir_forwards: u64,
    /// Directory mode: write notices not recorded locally because
    /// this node holds no interest in the page (never touched it,
    /// does not home it, has nothing cached or in flight).
    pub dir_pruned: u64,
    /// Directory mode: first-touch home migrations this node won.
    pub dir_migrations: u64,
}

impl NodeCounters {
    /// Records a fault classification.
    pub fn classify(&mut self, class: MissClass) {
        match class {
            MissClass::NoPf => self.pf_no_pf += 1,
            MissClass::Hit => self.pf_hit += 1,
            MissClass::TooLate => self.pf_too_late += 1,
            MissClass::Invalidated => self.pf_invalidated += 1,
        }
    }
}

/// Engine-side state of one node.
#[derive(Debug)]
pub(crate) struct NodeState {
    /// This node's id.
    pub id: NodeId,
    /// The node's vector clock.
    pub vc: VectorClock,
    /// Write notices known locally.
    pub board: NoticeBoard,
    /// Prefetched diff replies awaiting use.
    pub cache: DiffCache,
    /// Prefetched base copies awaiting use.
    pub base_cache: HashMap<PageId, BasePayload>,
    /// Diffs this node created, keyed by (page index, own sequence).
    /// `Arc`-shared with every reply payload serving them, so a hot
    /// diff requested by many readers is encoded and stored once.
    pub own_diffs: HashMap<(usize, u32), Arc<Diff>>,
    /// Encoded bytes held in `own_diffs` (GC trigger).
    pub own_diff_bytes: usize,
    /// Every interval this node knows about (its own and received).
    pub known_intervals: Vec<IntervalRecord>,
    /// Dedup index over `known_intervals`: (origin, origin-sequence).
    pub known_set: std::collections::HashSet<(NodeId, u32)>,
    /// Vector clock at the last barrier release (bounds what must be
    /// sent to the barrier manager).
    pub last_release_vc: VectorClock,
    /// In-flight fault-driven fetches.
    pub fetches: HashMap<PageId, Fetch>,
    /// Per-page prefetch bookkeeping.
    pub pf_meta: HashMap<PageId, PfMeta>,
    /// Automatic-prefetch mode: pages that faulted after each
    /// synchronization point, keyed by the sync object — the access
    /// pattern history of the Bianchini-style runtime prefetcher.
    pub sync_history: HashMap<SyncKey, Vec<PageId>>,
    /// Automatic-prefetch mode: the sync object whose epoch is
    /// currently being recorded.
    pub current_sync: Option<SyncKey>,
    /// Automatic-prefetch mode: pages faulted in the current epoch.
    pub current_faults: Vec<PageId>,
    /// Adaptive prefetch engine state; `None` unless the run enables
    /// `PrefetchConfig::adaptive`.
    pub adaptive: Option<AdaptiveNode>,
    /// Lock state.
    pub locks: LockTable,
    /// Barrier local-combining state.
    pub barrier: NodeBarrier,
    /// Thread scheduler.
    pub sched: Scheduler,
    /// A thread stalled without switching pins the CPU (combined
    /// mode memory stalls, §5).
    pub pinned: Option<ThreadId>,
    /// CPU time account.
    pub account: NodeAccount,
    /// Statistics.
    pub counters: NodeCounters,
    /// The burst of app computation currently on the CPU.
    pub burst: Option<Burst>,
}

/// An application compute burst committed to the CPU.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Burst {
    /// The running thread.
    pub tid: ThreadId,
    /// When the burst's syscall matures.
    pub end: SimTime,
    /// Extra delay accumulated from interrupt servicing during the
    /// burst.
    pub penalty: SimDuration,
}

impl NodeState {
    /// Fresh state for node `id` of `nodes`, with `threads_on_node`
    /// application threads.
    pub fn new(id: NodeId, nodes: usize, threads_on_node: usize) -> Self {
        NodeState {
            id,
            vc: VectorClock::new(nodes),
            board: NoticeBoard::new(),
            cache: DiffCache::new(),
            base_cache: HashMap::new(),
            own_diffs: HashMap::new(),
            own_diff_bytes: 0,
            known_intervals: Vec::new(),
            known_set: std::collections::HashSet::new(),
            last_release_vc: VectorClock::new(nodes),
            fetches: HashMap::new(),
            pf_meta: HashMap::new(),
            sync_history: HashMap::new(),
            current_sync: None,
            current_faults: Vec::new(),
            adaptive: None,
            locks: LockTable::new(id, nodes),
            barrier: NodeBarrier::new(threads_on_node),
            sched: Scheduler::new(),
            pinned: None,
            account: NodeAccount::new(),
            counters: NodeCounters::default(),
            burst: None,
        }
    }

    /// Intervals this node knows that `vc` does not dominate —
    /// the write notices to piggyback on a grant or barrier message.
    pub fn intervals_unknown_to(&self, vc: &VectorClock) -> Vec<IntervalRecord> {
        self.known_intervals
            .iter()
            .filter(|rec| !vc.dominates(&rec.stamp))
            .cloned()
            .collect()
    }

    /// Records an interval in the knowledge log (deduplicated).
    /// Returns true if it was new.
    pub fn learn_interval(&mut self, rec: &IntervalRecord) -> bool {
        let key = (rec.origin, rec.stamp.get(rec.origin));
        if self.known_set.contains(&key) {
            return false;
        }
        self.known_set.insert(key);
        self.known_intervals.push(rec.clone());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(origin: NodeId, ticks: u32, nodes: usize) -> IntervalRecord {
        let mut stamp = VectorClock::new(nodes);
        for _ in 0..ticks {
            stamp.tick(origin);
        }
        IntervalRecord {
            origin,
            stamp,
            pages: vec![PageId::new(0)],
        }
    }

    #[test]
    fn node_mem_homes_start_valid() {
        let mem = NodeMem::new(4, |p| p % 2 == 0);
        assert!(mem.pages[0].valid && mem.pages[0].ever_valid);
        assert!(!mem.pages[1].valid && !mem.pages[1].ever_valid);
        assert!(mem.pages[2].twin.is_none());
    }

    #[test]
    fn learn_interval_dedupes() {
        let mut n = NodeState::new(0, 2, 1);
        let rec = record(1, 1, 2);
        assert!(n.learn_interval(&rec));
        assert!(!n.learn_interval(&rec));
        assert_eq!(n.known_intervals.len(), 1);
    }

    #[test]
    fn intervals_unknown_to_filters_by_domination() {
        let mut n = NodeState::new(0, 2, 1);
        n.learn_interval(&record(1, 1, 2));
        n.learn_interval(&record(1, 2, 2));
        let mut knows_one = VectorClock::new(2);
        knows_one.tick(1);
        let unknown = n.intervals_unknown_to(&knows_one);
        assert_eq!(unknown.len(), 1);
        assert_eq!(unknown[0].stamp.get(1), 2);
        let knows_none = VectorClock::new(2);
        assert_eq!(n.intervals_unknown_to(&knows_none).len(), 2);
    }

    #[test]
    fn classify_tallies() {
        let mut c = NodeCounters::default();
        c.classify(MissClass::Hit);
        c.classify(MissClass::Hit);
        c.classify(MissClass::TooLate);
        c.classify(MissClass::Invalidated);
        c.classify(MissClass::NoPf);
        assert_eq!(c.pf_hit, 2);
        assert_eq!(c.pf_too_late, 1);
        assert_eq!(c.pf_invalidated, 1);
        assert_eq!(c.pf_no_pf, 1);
    }
}
