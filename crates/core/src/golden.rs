//! The golden sequential executor: the differential-checking
//! reference model.
//!
//! [`golden_run`] executes a [`DsmProgram`] with no DSM at all — one
//! flat memory, every page always valid, no messages, no faults, no
//! prefetching — under a cooperative scheduler that runs exactly one
//! thread at a time. For a data-race-free program (which every
//! correct LRC program must be), the final memory produced this way
//! is *the* reference answer the distributed run must reproduce byte
//! for byte.
//!
//! One subtlety: the reference is only unique up to synchronization
//! order. Programs that accumulate floating-point values under a lock
//! (WATER-NSQ, WATER-SP) produce bitwise-different sums for different
//! critical-section orders, because float addition is not
//! associative. The golden executor therefore *replays* the DSM run's
//! own lock-grant order, captured as
//! [`GrantRecord`](crate::GrantRecord)s by the oracle
//! ([`OracleConfig::capture`](crate::OracleConfig)): a lock is
//! granted to the thread the trace names next, and only falls back to
//! FIFO order when the trace is exhausted or absent. Replay cannot
//! deadlock on a trace the engine actually produced — that order was
//! realizable under the same program order.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use rsdsm_protocol::Page;

use crate::conductor::{CallMsg, DsmCtx, Syscall};
use crate::config::{DsmConfig, PrefetchConfig};
use crate::heap::Heap;
use crate::msg::{BarrierId, LockId};
use crate::node::NodeMem;
use crate::oracle::{digest_pages, GrantRecord};
use crate::program::{DsmProgram, VerifyCtx};
use crate::thread::ThreadId;

/// The golden sequential executor's result.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The reference final memory image, one [`Page`] per heap page.
    pub pages: Vec<Page>,
    /// FNV-1a digest of `pages` (compare against
    /// [`OracleOutcome::image_digest`](crate::OracleOutcome)).
    pub image_digest: u64,
    /// Whether the application's own verification accepted the
    /// golden result.
    pub verified: bool,
}

/// Scheduler-side view of one golden thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GState {
    /// Runnable; will be resumed when its turn comes.
    Ready,
    /// Waiting for a lock.
    BlockedLock,
    /// Waiting at a barrier.
    BlockedBarrier,
    /// Exited.
    Done,
}

#[derive(Debug, Default)]
struct GLock {
    holder: Option<usize>,
    /// Blocked acquirers in arrival order (FIFO fallback order).
    waiters: Vec<usize>,
}

struct GPeer {
    resume_tx: Sender<()>,
    call_rx: Receiver<CallMsg>,
}

/// Runs `app` single-threaded (in the memory sense) to the reference
/// final image, replaying `lock_trace` for per-lock grant order.
///
/// Pass an empty trace for programs whose result does not depend on
/// critical-section order; pass the `lock_trace` of a captured DSM
/// run (see [`OracleConfig`](crate::OracleConfig)) to reproduce
/// order-sensitive results exactly.
///
/// # Errors
///
/// Returns a description when an application thread panics, a thread
/// releases a lock it does not hold, or the schedule wedges (which,
/// for a trace the engine produced, indicates an engine bug).
pub fn golden_run<P: DsmProgram>(
    app: &P,
    cfg: &DsmConfig,
    lock_trace: &[GrantRecord],
) -> Result<GoldenRun, String> {
    let mut heap = Heap::new(cfg.nodes);
    let handles = app.allocate(&mut heap);
    let total_pages = heap.page_count();
    let total_threads = cfg.total_threads();

    // One flat memory, every page valid from the start: no faults, no
    // twins needed for correctness (writes land directly), no DSM.
    let mem: Arc<Mutex<Vec<NodeMem>>> =
        Arc::new(Mutex::new(vec![NodeMem::new(total_pages, |_| true)]));
    let panic_note: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

    let mut peers = Vec::with_capacity(total_threads);
    let mut ctxs = Vec::with_capacity(total_threads);
    for t in 0..total_threads {
        let (resume_tx, resume_rx) = mpsc::channel();
        let (call_tx, call_rx) = mpsc::channel();
        peers.push(GPeer { resume_tx, call_rx });
        ctxs.push(DsmCtx::new(
            ThreadId(t),
            0,
            total_threads,
            Arc::clone(&mem),
            cfg.costs.clone(),
            PrefetchConfig::off(),
            resume_rx,
            call_tx,
        ));
    }

    // Per-lock replay queues from the captured grant order.
    let mut replay: HashMap<LockId, VecDeque<usize>> = HashMap::new();
    for rec in lock_trace {
        replay
            .entry(rec.lock)
            .or_default()
            .push_back(rec.thread.index());
    }

    let sched_result = thread::scope(|s| {
        for mut ctx in ctxs {
            let note = Arc::clone(&panic_note);
            let h = handles.clone();
            s.spawn(move || {
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    ctx.wait_start();
                    app.run(&mut ctx, &h);
                    ctx.exit();
                }));
                if let Err(payload) = res {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    let mut slot = note.lock().expect("panic note mutex");
                    slot.get_or_insert(msg);
                }
            });
        }
        // `peers` is consumed here so the resume channels close when
        // the schedule ends: on error any still-blocked threads
        // unblock, panic inside catch_unwind, and the join completes.
        run_schedule(peers, total_threads, &mut replay)
    });

    if let Some(msg) = panic_note.lock().expect("panic note mutex").take() {
        return Err(format!("golden thread panicked: {msg}"));
    }
    sched_result?;

    let mem_guard = mem.lock().expect("mem mutex");
    let pages: Vec<Page> = mem_guard[0].pages.iter().map(|e| e.data.clone()).collect();
    drop(mem_guard);
    let image_digest = digest_pages(&pages);
    let verified = app.verify(&VerifyCtx::new(pages.clone()), &handles);
    Ok(GoldenRun {
        pages,
        image_digest,
        verified,
    })
}

/// The cooperative scheduler: resume the lowest-indexed ready thread,
/// absorb its next syscall, repeat until every thread exits.
fn run_schedule(
    peers: Vec<GPeer>,
    total_threads: usize,
    replay: &mut HashMap<LockId, VecDeque<usize>>,
) -> Result<(), String> {
    let mut states = vec![GState::Ready; total_threads];
    let mut locks: HashMap<LockId, GLock> = HashMap::new();
    let mut barriers: HashMap<BarrierId, Vec<usize>> = HashMap::new();
    let mut done = 0;

    while done < total_threads {
        let Some(t) = states.iter().position(|s| *s == GState::Ready) else {
            return Err(format!(
                "golden schedule wedged with {done}/{total_threads} threads done \
                 (lock-trace replay mismatch?): states {states:?}"
            ));
        };
        peers[t]
            .resume_tx
            .send(())
            .map_err(|_| format!("golden thread {t} died before resume"))?;
        let call = peers[t]
            .call_rx
            .recv()
            .map_err(|_| format!("golden thread {t} died mid-run"))?;
        match call.syscall {
            Syscall::Exit => {
                states[t] = GState::Done;
                done += 1;
            }
            Syscall::Fault { page, .. } => {
                // Unreachable: every page is valid in golden memory.
                return Err(format!("golden thread {t} faulted on {page}"));
            }
            Syscall::Prefetch(_) => {
                // Prefetching is configured off; tolerate a stray call
                // as a no-op (the thread just continues).
            }
            Syscall::Acquire(l) => {
                let gl = locks.entry(l).or_default();
                let its_turn = match replay.get(&l).and_then(|q| q.front()) {
                    Some(&next) => next == t,
                    None => gl.waiters.is_empty(),
                };
                if gl.holder.is_none() && its_turn {
                    gl.holder = Some(t);
                    if let Some(q) = replay.get_mut(&l) {
                        q.pop_front();
                    }
                } else {
                    gl.waiters.push(t);
                    states[t] = GState::BlockedLock;
                }
            }
            Syscall::Release(l) => {
                let gl = locks
                    .get_mut(&l)
                    .ok_or_else(|| format!("golden thread {t} released unowned {l:?}"))?;
                if gl.holder != Some(t) {
                    return Err(format!(
                        "golden thread {t} released {l:?} held by {:?}",
                        gl.holder
                    ));
                }
                gl.holder = None;
                // Grant to the thread the trace names next if it is
                // already waiting; otherwise leave the lock free for
                // it to claim on arrival. FIFO when no trace remains.
                let next = match replay.get(&l).and_then(|q| q.front()) {
                    Some(&want) => gl.waiters.iter().position(|&w| w == want),
                    None => (!gl.waiters.is_empty()).then_some(0),
                };
                if let Some(i) = next {
                    let w = gl.waiters.remove(i);
                    gl.holder = Some(w);
                    if let Some(q) = replay.get_mut(&l) {
                        q.pop_front();
                    }
                    states[w] = GState::Ready;
                }
            }
            Syscall::Barrier(id) => {
                let arrived = barriers.entry(id).or_default();
                arrived.push(t);
                states[t] = GState::BlockedBarrier;
                if arrived.len() == total_threads {
                    for &w in arrived.iter() {
                        states[w] = GState::Ready;
                    }
                    arrived.clear();
                }
            }
        }
    }
    Ok(())
}
