//! The software cost model.
//!
//! Every CPU-side cost in the DSM is an explicit, documented constant.
//! Defaults are calibrated so the simulated cluster lands in the
//! paper's measured ranges (§2.2, §3.3, §4.3): remote page misses
//! around half a millisecond uncongested, ~140 µs of software overhead
//! per message-generating prefetch, ~110 µs per context switch.

use rsdsm_simnet::SimDuration;

/// CPU-time constants for DSM software operations.
///
/// All costs are charged to a node's CPU and attributed to the
/// execution-time categories of the paper's figures.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Entering the page-fault handler (trap + lookup).
    pub fault_entry: SimDuration,
    /// Software send overhead per message (protocol + UDP stack).
    pub msg_send: SimDuration,
    /// Software receive overhead per message.
    pub msg_recv: SimDuration,
    /// Extra per-arrival overhead when arrivals are handled
    /// asynchronously (signals) instead of spin-polling — charged
    /// whenever multithreading is enabled (§4.3).
    pub async_arrival: SimDuration,
    /// Creating a twin (copy one page).
    pub twin_create: SimDuration,
    /// Fixed cost of encoding a diff (plus a per-byte part below).
    pub diff_create_base: SimDuration,
    /// Per-byte cost of scanning/encoding a diff.
    pub diff_create_per_kb: SimDuration,
    /// Fixed cost of applying a diff.
    pub diff_apply_base: SimDuration,
    /// Per-kilobyte cost of applying diff payload.
    pub diff_apply_per_kb: SimDuration,
    /// Software overhead of issuing one message-generating prefetch
    /// (paper: "roughly 140 µs", §3.3).
    pub prefetch_issue: SimDuration,
    /// Cost of an unnecessary prefetch: address lookup, valid-flag
    /// check, conditional branch (§3.3 footnote 4).
    pub prefetch_check: SimDuration,
    /// Extra service cost when a prefetch request finds a dirty page
    /// and must split the interval (§3.3: "more expensive to service").
    pub prefetch_service_extra: SimDuration,
    /// User-level thread context switch (paper: ~110 µs, §4.3).
    pub context_switch: SimDuration,
    /// Passing a lock between threads on the same node (§4.1).
    pub lock_local_pass: SimDuration,
    /// Processing a lock request/grant or barrier message beyond the
    /// generic receive cost.
    pub sync_process: SimDuration,
    /// Generating or absorbing a transport-level acknowledgement.
    /// Small: acks never enter the protocol handlers.
    pub ack_process: SimDuration,
    /// Garbage-collection cost per retained diff at a GC point.
    pub gc_per_diff: SimDuration,
    /// Busy-time cost per shared-memory access check (page lookup on
    /// the fast path; models the instrumentation the paper's inline
    /// checks would cost).
    pub access_check: SimDuration,
    /// Busy-time cost per byte of shared data touched (memory system).
    pub shared_byte: SimDuration,
}

impl CostModel {
    /// Costs calibrated to the paper's 133 MHz PowerPC 604 + AIX 4.1
    /// platform.
    pub fn paper_1998() -> Self {
        CostModel {
            fault_entry: SimDuration::from_micros(30),
            msg_send: SimDuration::from_micros(55),
            msg_recv: SimDuration::from_micros(55),
            async_arrival: SimDuration::from_micros(35),
            twin_create: SimDuration::from_micros(20),
            diff_create_base: SimDuration::from_micros(15),
            diff_create_per_kb: SimDuration::from_micros(10),
            diff_apply_base: SimDuration::from_micros(10),
            diff_apply_per_kb: SimDuration::from_micros(8),
            prefetch_issue: SimDuration::from_micros(140),
            prefetch_check: SimDuration::from_nanos(800),
            prefetch_service_extra: SimDuration::from_micros(40),
            context_switch: SimDuration::from_micros(110),
            lock_local_pass: SimDuration::from_micros(8),
            sync_process: SimDuration::from_micros(25),
            ack_process: SimDuration::from_micros(5),
            gc_per_diff: SimDuration::from_micros(2),
            access_check: SimDuration::from_nanos(60),
            shared_byte: SimDuration::from_nanos(8),
        }
    }

    /// A free cost model; useful for protocol unit tests that care
    /// only about ordering, not timing.
    pub fn zero() -> Self {
        CostModel {
            fault_entry: SimDuration::ZERO,
            msg_send: SimDuration::ZERO,
            msg_recv: SimDuration::ZERO,
            async_arrival: SimDuration::ZERO,
            twin_create: SimDuration::ZERO,
            diff_create_base: SimDuration::ZERO,
            diff_create_per_kb: SimDuration::ZERO,
            diff_apply_base: SimDuration::ZERO,
            diff_apply_per_kb: SimDuration::ZERO,
            prefetch_issue: SimDuration::ZERO,
            prefetch_check: SimDuration::ZERO,
            prefetch_service_extra: SimDuration::ZERO,
            context_switch: SimDuration::ZERO,
            lock_local_pass: SimDuration::ZERO,
            sync_process: SimDuration::ZERO,
            ack_process: SimDuration::ZERO,
            gc_per_diff: SimDuration::ZERO,
            access_check: SimDuration::ZERO,
            shared_byte: SimDuration::ZERO,
        }
    }

    /// Cost of creating a diff with `payload` modified bytes.
    pub fn diff_create(&self, payload: usize) -> SimDuration {
        self.diff_create_base + scale_per_kb(self.diff_create_per_kb, payload)
    }

    /// Cost of applying a diff with `payload` modified bytes.
    pub fn diff_apply(&self, payload: usize) -> SimDuration {
        self.diff_apply_base + scale_per_kb(self.diff_apply_per_kb, payload)
    }

    /// CPU cost of one adaptive-detector observation in the fault
    /// handler: a window bump plus the majority check — the same
    /// table-lookup scale as a prefetch validity check. Derived from
    /// existing constants (no new fields: the model is embedded in
    /// every pinned report digest), and charged by the engine at
    /// execution, never pre-queried.
    pub fn adaptive_observe(&self) -> SimDuration {
        self.prefetch_check
    }

    /// CPU cost of planning `candidates` adaptive prefetch targets
    /// (bounds/validity filtering before any message is generated;
    /// issued messages are then charged [`CostModel::adaptive_issue`]
    /// each by the send path, at execution).
    pub fn adaptive_plan(&self, candidates: usize) -> SimDuration {
        SimDuration::from_nanos(self.prefetch_check.as_nanos() * candidates as u64)
    }

    /// CPU cost of sending one adaptive prefetch request. The
    /// `prefetch_issue` constant models the paper's *user-level*
    /// prefetch call (trap into the library, argument checks, then
    /// the send); the adaptive engine already runs inside the fault
    /// handler at protocol level, so its issues pay only the plain
    /// message-send cost.
    pub fn adaptive_issue(&self) -> SimDuration {
        self.msg_send
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_1998()
    }
}

fn scale_per_kb(per_kb: SimDuration, bytes: usize) -> SimDuration {
    SimDuration::from_nanos(per_kb.as_nanos() * bytes as u64 / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_cited_constants() {
        let m = CostModel::paper_1998();
        assert_eq!(m.prefetch_issue, SimDuration::from_micros(140));
        assert_eq!(m.context_switch, SimDuration::from_micros(110));
    }

    #[test]
    fn diff_costs_scale_with_payload() {
        let m = CostModel::paper_1998();
        assert!(m.diff_create(4096) > m.diff_create(64));
        assert_eq!(
            m.diff_create(1024),
            m.diff_create_base + m.diff_create_per_kb
        );
        assert_eq!(m.diff_apply(0), m.diff_apply_base);
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.diff_create(4096), SimDuration::ZERO);
        assert_eq!(m.diff_apply(4096), SimDuration::ZERO);
    }
}
