//! The application programming model.
//!
//! A benchmark is a type implementing [`DsmProgram`]: it allocates its
//! shared arrays up front, then every simulated thread executes
//! [`DsmProgram::run`] with its own [`DsmCtx`]. After the run the
//! engine materializes the authoritative final memory image and calls
//! [`DsmProgram::verify`] so every experiment double-checks its
//! numeric result.

use rsdsm_protocol::Page;

use crate::conductor::DsmCtx;
use crate::heap::{Heap, Pod, SharedVec};

/// A parallel application runnable on the simulated DSM.
///
/// # Examples
///
/// A two-thread program that sums a shared array:
///
/// ```
/// use rsdsm_core::{
///     BarrierId, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, Simulation,
///     VerifyCtx,
/// };
///
/// struct Sum;
///
/// impl DsmProgram for Sum {
///     type Handles = (SharedVec<f64>, SharedVec<f64>);
///
///     fn name(&self) -> String {
///         "sum".into()
///     }
///
///     fn allocate(&self, heap: &mut Heap) -> Self::Handles {
///         (
///             heap.alloc(1024, HomePolicy::Single(0)),
///             heap.alloc(2, HomePolicy::Single(0)),
///         )
///     }
///
///     fn run(&self, ctx: &mut DsmCtx, (data, partial): &Self::Handles) {
///         let t = ctx.thread_id();
///         let n = ctx.num_threads();
///         let chunk = data.len() / n;
///         if t == 0 {
///             for i in 0..data.len() {
///                 ctx.write(data, i, 1.0);
///             }
///         }
///         ctx.barrier(BarrierId(0));
///         let mine: f64 = ctx.read_vec(data, t * chunk, chunk).iter().sum();
///         ctx.write(partial, t, mine);
///         ctx.barrier(BarrierId(1));
///     }
///
///     fn verify(&self, mem: &VerifyCtx, (_, partial): &Self::Handles) -> bool {
///         (mem.read(partial, 0) + mem.read(partial, 1) - 1024.0).abs() < 1e-9
///     }
/// }
///
/// let report = Simulation::new(DsmConfig::paper_cluster(2))
///     .run(&Sum)
///     .expect("run succeeds");
/// assert!(report.verified);
/// ```
pub trait DsmProgram: Sync {
    /// Handles to the program's shared allocations, cloned into every
    /// thread.
    type Handles: Clone + Send + Sync;

    /// Human-readable benchmark name.
    fn name(&self) -> String;

    /// Allocates the program's shared arrays.
    fn allocate(&self, heap: &mut Heap) -> Self::Handles;

    /// The body executed by every application thread.
    fn run(&self, ctx: &mut DsmCtx, handles: &Self::Handles);

    /// Checks the final memory image. The default accepts anything.
    fn verify(&self, mem: &VerifyCtx, handles: &Self::Handles) -> bool {
        let _ = (mem, handles);
        true
    }
}

/// Zero-cost read access to the authoritative final memory image,
/// for result verification.
#[derive(Debug)]
pub struct VerifyCtx {
    pages: Vec<Page>,
}

impl VerifyCtx {
    pub(crate) fn new(pages: Vec<Page>) -> Self {
        VerifyCtx { pages }
    }

    /// Reads element `i` of a shared array from the final image.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn read<T: Pod>(&self, v: &SharedVec<T>, i: usize) -> T {
        let (page, off) = v.locate(i);
        T::read_le(&self.pages[page.index()].bytes()[off..off + T::BYTES])
    }

    /// Reads a range of elements from the final image.
    pub fn read_vec<T: Pod>(&self, v: &SharedVec<T>, start: usize, len: usize) -> Vec<T> {
        (start..start + len).map(|i| self.read(v, i)).collect()
    }
}
