//! # rsdsm-core
//!
//! A TreadMarks-style page-based software distributed shared memory
//! runtime with the two latency tolerance techniques studied in
//! *Comparative Evaluation of Latency Tolerance Techniques for
//! Software Distributed Shared Memory* (Mowry, Chan, Lo — HPCA-4,
//! 1998):
//!
//! - **Non-binding software-controlled prefetching** (§3): explicit
//!   [`DsmCtx::prefetch`] calls consult local write notices, send
//!   unreliable prefetch requests, cache diff replies in a separate
//!   heap, and apply them at access time — never violating coherence.
//! - **Multithreading** (§4): several user-level threads per node,
//!   switching on long-latency events, with request combining for
//!   pages, locks, and barriers.
//! - **The combined approach** (§5): multithreading for
//!   synchronization latency plus prefetching for memory latency, with
//!   redundant-prefetch suppression and throttling.
//!
//! The cluster itself (8 workstations on a 155 Mbps ATM LAN in the
//! paper) is simulated deterministically by `rsdsm-simnet`; the
//! coherence machinery (vector clocks, intervals, twins, diffs) comes
//! from `rsdsm-protocol`. Control traffic rides a modeled reliable
//! transport (sequence numbers, acks, timeout-driven retransmission
//! with exponential backoff — see [`TransportConfig`]), so runs stay
//! correct, and bit-identical for a given seed, even under the
//! injected message loss, duplication, and reordering of a
//! [`FaultPlan`]. Prefetch traffic deliberately stays droppable and
//! unretried, as in §3.1 of the paper.
//!
//! # Examples
//!
//! See [`DsmProgram`] for a complete program, and the `examples/`
//! directory of the repository for realistic applications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod barrier;
mod checkpoint;
mod conductor;
mod config;
mod costs;
mod engine;
mod golden;
mod heap;
mod lock;
mod msg;
mod node;
mod oracle;
mod prefetch;
mod program;
mod recovery;
mod report;
mod thread;
mod trace;
mod transport;

pub use accounting::{Breakdown, Category, IdleReason, NodeAccount, NormalizedBreakdown};
pub use checkpoint::{
    classify_slot, commit_region, payload_region, slot_for_seq, Checkpoint, CheckpointError,
    CommitRecord, DiffRecord, PageImage, SlotState, COMMIT_LEN, SLOT_COUNT, SLOT_REGIONS,
};
pub use conductor::DsmCtx;
pub use config::{
    DirectoryConfig, DirectoryPolicy, DsmConfig, PrefetchConfig, PrefetchMode, ThreadConfig,
};
pub use costs::CostModel;
pub use engine::Simulation;
pub use golden::{golden_run, GoldenRun};
pub use heap::{Heap, HomePolicy, Pod, SharedVec};
pub use msg::{BarrierId, IntervalRecord, LockId};
pub use node::{AccessCounters, MissClass, NodeCounters};
pub use oracle::{
    digest_pages, fnv1a, fnv1a_extend, GrantRecord, InvariantKind, OracleConfig, OracleOutcome,
    Violation,
};
pub use prefetch::{
    AdaptiveConfig, AdaptiveStats, StrideDetector, ThrottleChange, ThrottleController, TrendChange,
};
pub use program::{DsmProgram, VerifyCtx};
pub use recovery::{FailureDetector, PeerStatus, RecoveryConfig, RecoveryStats};
pub use report::{
    DirectorySummary, MissSummary, MtSummary, NetSummary, PrefetchSummary, RunReport, SimError,
    SyncSummary, TrafficRow,
};
pub use rsdsm_protocol::{Page, PAGE_SIZE};
pub use rsdsm_simnet::{
    ClassProbs, DegradedWindow, FaultPlan, FaultStats, NodeCrash, NodeStall, Partition,
    PersistConfig, PersistDevice, PersistStats, QueueBackend, Topology,
};
pub use thread::ThreadId;
pub use trace::{
    class as trace_class, kind as trace_kind, kind_label, Histogram, PrefetchTraceSummary,
    RetryTimeline, Trace, TraceError, TraceEvent, TraceMetrics, TraceRecord, Tracer, NO_CAUSE,
    NO_THREAD,
};
pub use transport::{Recv, TimeoutAction, Transport, TransportConfig, TransportSummary};
