//! Scale-out soak: the event engine under a much larger cluster and
//! event volume than the paper's 8-node matrix, with the full oracle
//! obligation (golden-model differential check, invariants, same-seed
//! determinism) — not just "it didn't crash".
//!
//! Two tiers, following the repo's env-gated matrix convention:
//!
//! - Default: an 8-node RADIX soak at the default problem scale.
//!   Fast enough for every `cargo test` run.
//! - `RSDSM_SOAK=full`: the 64-node paper-scale RADIX soak — over two
//!   million delivered messages per run — with the same oracle
//!   obligation, a wheel-vs-heap digest cross-check at that scale,
//!   and a wall-clock budget so CI catches an event-engine slowdown
//!   of the "accidentally quadratic" kind even when results stay
//!   correct.

use std::time::{Duration, Instant};

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, QueueBackend, TransportConfig};
use rsdsm::oracle::check;
use rsdsm::simnet::SimDuration;

fn full_soak() -> bool {
    std::env::var("RSDSM_SOAK").as_deref() == Ok("full")
}

/// Soak cluster config. At 64 nodes the manager (node 0) serializes
/// barrier arrivals from every peer, so its ingress link can hold
/// tens of seconds of queued data; the retry budget is raised to
/// TCP-like give-up times so queueing delay is never mistaken for
/// loss (the LAN-sized default tolerates ~10 s of silence).
fn soak_cfg(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes)
        .with_seed(1998)
        .with_transport(TransportConfig {
            max_rto: SimDuration::from_secs(30),
            max_retries: 24,
            ..TransportConfig::default()
        })
}

/// Runs the oracle-checked soak cell and returns the wall-clock time
/// the whole obligation took (two DSM runs plus the golden replay).
fn oracle_soak(nodes: usize, scale: Scale) -> Duration {
    let started = Instant::now();
    let verdict = check(Benchmark::Radix, scale, soak_cfg(nodes))
        .unwrap_or_else(|e| panic!("{nodes}-node RADIX soak failed: {e}"));
    assert!(
        verdict.ok(),
        "{nodes}-node RADIX soak: {}",
        verdict.summary_line()
    );
    started.elapsed()
}

/// The always-on tier: 8 nodes (the paper's cluster size) at the
/// default problem scale, full oracle obligation.
#[test]
fn radix_soak_8_nodes() {
    oracle_soak(8, Scale::Default);
}

/// The full tier: 64 nodes at the paper's problem scale. The run must
/// stay byte-correct against the golden model (same obligation as the
/// 8-node tier), deliver well over a million messages — so the event
/// engine processes several million queue events — and fit a
/// wall-clock budget.
///
/// The wheel-vs-heap cross-check at this scale compares report
/// digests from untraced runs: the report digest covers the complete
/// run state, and the Test-scale grid in `parallel_determinism.rs`
/// already pins trace bytes per backend (a paper-scale trace would
/// hold every one of the ~4M send/recv records in memory for no added
/// coverage).
#[test]
fn radix_soak_64_nodes_full() {
    if !full_soak() {
        eprintln!("skipping 64-node soak (set RSDSM_SOAK=full)");
        return;
    }
    let nodes = 64;

    // Correctness at scale: the full oracle obligation.
    let elapsed = oracle_soak(nodes, Scale::Paper);

    // Event volume and backend equivalence at scale.
    let started = Instant::now();
    let wheel = Benchmark::Radix
        .run_queued(Scale::Paper, soak_cfg(nodes), QueueBackend::Wheel)
        .expect("wheel soak run");
    let heap = Benchmark::Radix
        .run_queued(Scale::Paper, soak_cfg(nodes), QueueBackend::Heap)
        .expect("heap soak run");
    assert_eq!(
        wheel.digest(),
        heap.digest(),
        "wheel and heap reports diverged at 64 nodes"
    );
    assert!(
        wheel.net.total_msgs >= 1_500_000,
        "soak too small to exercise the engine: {} msgs delivered",
        wheel.net.total_msgs
    );

    // Wall-clock budget: generous (CI machines vary), but tight
    // enough that a complexity regression in the queue or the
    // zero-copy paths blows it immediately. Measured ~85 s per run on
    // a stock runner, ~5 runs total across both phases.
    let budget = Duration::from_secs(900);
    let backend_elapsed = started.elapsed();
    assert!(
        elapsed < budget && backend_elapsed < budget,
        "soak blew its wall-clock budget: oracle {elapsed:?}, \
         backend cross-check {backend_elapsed:?} (budget {budget:?})"
    );
}
