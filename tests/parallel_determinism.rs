//! The parallel scheduler's determinism contract, pinned end to end:
//! fanning simulation cells across worker threads must change
//! *nothing* about their results — not the report digests, not the
//! RTR1 trace bytes — because every cell is a pure function of its
//! config and owns all of its state. `rsdsm_bench::pool::run` only
//! reorders wall-clock execution, never results (it returns them in
//! task order).
//!
//! The grid deliberately includes the stateful-looking cases: a lossy
//! run (fault injector RNG), a crash-restart run (recovery machinery),
//! and a partition+heal run (quorum freeze and checkpoint rejoin), on
//! top of the standard RADIX/FFT × O/P/2T/2TP matrix.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{
    AdaptiveConfig, DsmConfig, FaultPlan, NodeCrash, Partition, PrefetchConfig, QueueBackend,
    RecoveryConfig, TransportConfig,
};
use rsdsm::oracle::Technique;
use rsdsm::simnet::{SimDuration, SimTime};
use rsdsm_bench::pool;

/// One grid cell: a fully-specified config the cell runs under, plus
/// a label for failure messages.
#[derive(Clone)]
struct Cell {
    label: String,
    bench: Benchmark,
    cfg: DsmConfig,
}

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

/// Lease parameters sized for `Scale::Test` runs (mirrors the crash
/// matrix's).
fn test_recovery() -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(2)
    }
}

fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for bench in [Benchmark::Radix, Benchmark::Fft] {
        for tech in Technique::ALL {
            cells.push(Cell {
                label: format!("{bench} [{}]", tech.label()),
                bench,
                cfg: tech.configure(bench, base(4)),
            });
        }
    }
    // A lossy cell: the fault injector draws from its own seeded RNG,
    // which must not observe the worker count.
    cells.push(Cell {
        label: "FFT [O, 5% loss]".into(),
        bench: Benchmark::Fft,
        cfg: base(4).with_faults(FaultPlan::uniform_loss(0xFA11, 0.05)),
    });
    // A crash-restart cell: checkpoints, suspicion, park-and-resume.
    let mut outage = base(4)
        .with_recovery(test_recovery())
        .with_transport(TransportConfig {
            initial_rto: SimDuration::from_millis(1),
            max_retries: 3,
            ..TransportConfig::default()
        });
    outage.faults = outage.faults.with_node_crash(NodeCrash {
        node: 2,
        at: SimTime::from_millis(2),
        restart_after: Some(SimDuration::from_millis(20)),
    });
    cells.push(Cell {
        label: "RADIX [O, crash-restart]".into(),
        bench: Benchmark::Radix,
        cfg: outage,
    });
    // A partition+heal cell: quorum freeze, parked suspicions, and the
    // time-shifted checkpoint rejoin must all be worker-count-blind.
    let mut cut = base(4).with_recovery(test_recovery());
    cut.faults = cut.faults.with_partition(Partition::cut(
        vec![vec![2]],
        SimTime::from_millis(2),
        SimDuration::from_millis(5),
    ));
    cells.push(Cell {
        label: "RADIX [O, partition-heal]".into(),
        bench: Benchmark::Radix,
        cfg: cut,
    });
    // Adaptive-prefetch cells: the stride detectors, throttle
    // controllers, and too-late joins are per-node state inside the
    // cell, so they must be as worker-count- and backend-blind as
    // everything else.
    cells.push(Cell {
        label: "FFT [A]".into(),
        bench: Benchmark::Fft,
        cfg: base(4).with_prefetch(PrefetchConfig::adaptive()),
    });
    cells.push(Cell {
        label: "RADIX [A+P]".into(),
        bench: Benchmark::Radix,
        cfg: base(4).with_prefetch(PrefetchConfig::adaptive_static()),
    });
    cells
}

/// Runs every grid cell on `jobs` workers and returns each cell's
/// (report digest, trace digest, RTR1 byte length).
fn digests_at(jobs: usize) -> Vec<(String, u64, u64, usize)> {
    let tasks: Vec<_> = grid()
        .into_iter()
        .map(|cell| {
            move || {
                let (report, trace) = cell
                    .bench
                    .run_traced(Scale::Test, cell.cfg)
                    .unwrap_or_else(|e| panic!("{}: {e}", cell.label));
                assert!(report.verified, "{}: result corrupted", cell.label);
                (
                    cell.label,
                    report.digest(),
                    trace.digest(),
                    trace.encode().len(),
                )
            }
        })
        .collect();
    pool::run(jobs, tasks)
}

/// The whole grid digests identically at `--jobs 1` and `--jobs 8`:
/// parallel scheduling is invisible in the results.
#[test]
fn parallel_and_serial_cells_are_digest_identical() {
    let serial = digests_at(1);
    let parallel = digests_at(8);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s, p,
            "cell diverged between jobs=1 and jobs=8 \
             (label, report digest, trace digest, RTR1 len)"
        );
    }
}

/// Oversubscription (more workers than cells, and workers racing over
/// a tiny queue) is equally invisible.
#[test]
fn oversubscribed_pool_changes_nothing() {
    let reference = digests_at(1);
    let oversubscribed = digests_at(64);
    assert_eq!(reference, oversubscribed);
}

/// Like [`digests_at`], but pinning the event-queue backend instead of
/// the worker count (workers fixed at 4).
fn digests_on(backend: QueueBackend) -> Vec<(String, u64, u64, usize)> {
    let tasks: Vec<_> = grid()
        .into_iter()
        .map(|cell| {
            move || {
                let (report, trace) = cell
                    .bench
                    .run_traced_queued(Scale::Test, cell.cfg, backend)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", cell.label, backend.label()));
                assert!(report.verified, "{}: result corrupted", cell.label);
                (
                    cell.label,
                    report.digest(),
                    trace.digest(),
                    trace.encode().len(),
                )
            }
        })
        .collect();
    pool::run(4, tasks)
}

/// Observer-freedom of the adaptive machinery, pinned at the byte
/// level: a run whose `AdaptiveConfig` is disabled must produce a
/// report that is textually identical — and therefore
/// digest-identical — to one from a build that never had the adaptive
/// module, no matter how the disabled config was arrived at. The
/// absolute digest below anchors that to the pre-adaptive history;
/// the Debug-text check catches the field ever leaking into the
/// rendering while `None`.
#[test]
fn disabled_adaptive_is_byte_transparent() {
    let plain = Benchmark::Radix
        .run(Scale::Test, base(4))
        .expect("plain RADIX");
    // Same run, but with the adaptive knob explicitly constructed and
    // switched off rather than defaulted.
    let toggled = Benchmark::Radix
        .run(
            Scale::Test,
            base(4).with_prefetch(PrefetchConfig {
                adaptive: AdaptiveConfig::off(),
                ..PrefetchConfig::off()
            }),
        )
        .expect("toggled RADIX");
    assert_eq!(plain.digest(), toggled.digest());
    let text = format!("{plain:?}");
    assert!(
        !text.contains("adaptive"),
        "disabled adaptive state leaked into the report rendering"
    );
    assert!(plain.adaptive.is_none());
    // And an enabled run renders it, so the gate is the config, not a
    // dead field.
    let on = Benchmark::Radix
        .run(
            Scale::Test,
            base(4).with_prefetch(PrefetchConfig::adaptive()),
        )
        .expect("adaptive RADIX");
    assert!(format!("{on:?}").contains("adaptive"));
    assert_ne!(on.digest(), plain.digest());
}

/// The timing-wheel queue and the binary-heap reference produce
/// byte-identical results over the whole grid — report digests, RTR1
/// trace digests, and encoded trace lengths all match, including the
/// lossy, crash-restart, and partition+heal cells whose event
/// schedules are the most irregular. This is the end-to-end
/// counterpart of the queue-level differential suite
/// (`crates/simnet/tests/wheel_equivalence.rs`): the engine cannot
/// tell the two backends apart.
#[test]
fn wheel_and_heap_backends_are_digest_identical() {
    let wheel = digests_on(QueueBackend::Wheel);
    let heap = digests_on(QueueBackend::Heap);
    assert_eq!(wheel.len(), heap.len());
    for (w, h) in wheel.iter().zip(&heap) {
        assert_eq!(
            w, h,
            "cell diverged between wheel and heap backends \
             (label, report digest, trace digest, RTR1 len)"
        );
    }
}
