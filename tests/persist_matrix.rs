//! The durable-checkpoint matrix: crashes that land *inside* the
//! persist window — while a checkpoint image is still draining to the
//! modeled device — must recover from the newest *committed* slot,
//! never from a torn image, and the recovered run must still pass the
//! full oracle obligation (app verification plus the golden
//! sequential model).
//!
//! The default run scans a handful of seeded crash instants over one
//! (app, technique) cell with a deliberately slow device so the
//! persist windows dominate the timeline; at least one instant must
//! land mid-persist and exercise the torn-discard + slot-fallback
//! path. Set `RSDSM_PERSIST_MATRIX=full` for the crash-at-any-point
//! sweep over RADIX/FFT × {O, P, 2T, 2TP}; cells fan out across cores
//! via `rsdsm_bench::pool`.
//!
//! A failing cell writes its run report (summary line plus the full
//! debug dump) under `target/persist-artifacts/` before panicking, so
//! a red CI build ships the offending timeline.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, RecoveryConfig, RunReport, TraceEvent};
use rsdsm::oracle::{check_technique, Technique};
use rsdsm::simnet::{NodeCrash, PersistConfig, SimDuration, SimTime};
use rsdsm_bench::pool;

/// The victim. Node 0 hosts the managers and the recovery
/// coordinator and is assumed stable; any other node may die.
const VICTIM: usize = 2;

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

/// Recovery sized for `Scale::Test` runs (the crash-matrix numbers)
/// plus a slow persistent device: at 2 bytes/us a per-node checkpoint
/// image takes simulated milliseconds to drain, so the persist
/// windows cover most of the timeline and a scanned crash instant
/// reliably lands inside one.
fn persist_recovery() -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        persist: PersistConfig {
            enabled: true,
            write_bw: 2,
            read_bw: 4,
            ..PersistConfig::off()
        },
        ..RecoveryConfig::on(2)
    }
}

fn full_grid() -> bool {
    std::env::var("RSDSM_PERSIST_MATRIX").as_deref() == Ok("full")
}

/// Writes the run's summary line and full report under
/// `target/persist-artifacts/` and panics with `msg`, so a failing
/// cell ships its evidence (the CI job uploads the directory).
fn fail_with_artifact(name: &str, report: &RunReport, msg: String) -> ! {
    let dir = std::path::Path::new("target").join("persist-artifacts");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.txt"));
    let body = format!(
        "{msg}\n\nsummary: {}\n\n{report:#?}\n",
        report.fault_summary_line().unwrap_or_default()
    );
    match std::fs::write(&path, body) {
        Ok(()) => panic!("{msg}\n(report artifact written to {})", path.display()),
        Err(e) => panic!("{msg}\n(artifact write to {} failed: {e})", path.display()),
    }
}

/// One crash run of `bench`/`technique` with persistence on and the
/// victim dying at `at`. Asserts the run survives (verified, exactly
/// one crash) and returns the report for counter inspection. A
/// recovery is demanded only when `require_recovery`: a crash in the
/// run's tail can land after the victim's last contribution, in which
/// case the run legitimately completes before the replacement
/// rejoins.
fn crash_run(
    bench: Benchmark,
    technique: Technique,
    at: SimTime,
    require_recovery: bool,
) -> RunReport {
    let mut cfg = base(4).with_recovery(persist_recovery());
    cfg.faults = cfg.faults.with_node_crash(NodeCrash {
        node: VICTIM,
        at,
        restart_after: None,
    });
    let cell = format!("{}-{}-{}ns", bench.name(), technique.label(), at.as_nanos());
    let report = bench
        .run(Scale::Test, technique.configure(bench, cfg))
        .unwrap_or_else(|e| panic!("{cell}: {e}"));
    if !report.verified {
        fail_with_artifact(&cell, &report, format!("{cell}: result corrupted"));
    }
    if report.recovery.crashes != 1 || (require_recovery && report.recovery.recoveries < 1) {
        fail_with_artifact(
            &cell,
            &report,
            format!(
                "{cell}: expected 1 crash with >=1 recovery, saw {} crashes / {} recoveries",
                report.recovery.crashes, report.recovery.recoveries
            ),
        );
    }
    report
}

/// Dry (crash-free) persist run, traced: checks the device accounting
/// and returns the completion time plus the victim's persist-commit
/// instants `(barrier instant, image bytes)` that aim the mid-persist
/// crashes.
fn dry_run(bench: Benchmark, technique: Technique) -> (RunReport, Vec<(SimTime, u32)>) {
    let cfg = base(4).with_recovery(persist_recovery());
    let (report, trace) = bench
        .run_traced(Scale::Test, technique.configure(bench, cfg))
        .unwrap_or_else(|e| panic!("{bench} {} dry run: {e}", technique.label()));
    let r = &report.recovery;
    assert!(
        r.checkpoints_taken >= 2,
        "{bench} {}: need >=2 checkpoints for a slot fallback, got {}",
        technique.label(),
        r.checkpoints_taken
    );
    assert!(r.persist_bytes > 0, "persisted no bytes");
    assert!(
        r.flushes >= 2 * r.checkpoints_taken && r.fences >= 2 * r.checkpoints_taken,
        "two-slot commit must flush+fence twice per checkpoint: \
         {} checkpoints, {} flushes, {} fences",
        r.checkpoints_taken,
        r.flushes,
        r.fences
    );
    assert_eq!(r.torn_discards, 0, "dry run tore a slot");
    assert_eq!(r.slot_fallbacks, 0, "dry run fell back a slot");

    let persists: Vec<(SimTime, u32)> = trace
        .records
        .iter()
        .filter_map(|rec| match rec.event {
            TraceEvent::PersistCommit { bytes, .. } if rec.node == VICTIM as u32 => {
                Some((rec.at, bytes))
            }
            _ => None,
        })
        .collect();
    assert!(
        persists.len() >= 2,
        "{bench} {}: victim persisted {} checkpoints, need >=2 for a fallback",
        technique.label(),
        persists.len()
    );
    (report, persists)
}

/// One cell of the matrix. Crash instants come in two flavors:
/// arbitrary fractions of the run (`offsets`), which must all
/// survive, and instants aimed *inside* the victim's persist drain
/// windows (from the traced dry run — the drain starts at the
/// commit's barrier instant and runs at the device write bandwidth),
/// which must exercise the torn-discard + slot-fallback path. The
/// first fallback hit also gets the full oracle check.
fn sweep_cell(bench: Benchmark, technique: Technique, offsets: &[(u64, u64)]) {
    let (dry, persists) = dry_run(bench, technique);
    let total = dry.total_time;
    for &(num, den) in offsets {
        let at = SimTime::ZERO + SimDuration::from_nanos(total.as_nanos() * num / den);
        crash_run(bench, technique, at, false);
    }

    let dev = persist_recovery().persist;
    let mut hit = None;
    // Skip the first persist: tearing it leaves no previous committed
    // slot to fall back to (that path restarts from scratch, which the
    // arbitrary-offset runs may already cover).
    for &(start, bytes) in persists[1..].iter().take(3) {
        let quarter = dev.write_time(bytes as usize / 4);
        let at = start + quarter.max(SimDuration::from_nanos(1));
        let report = crash_run(bench, technique, at, true);
        let r = &report.recovery;
        if r.torn_discards >= 1 && r.slot_fallbacks >= 1 {
            hit = Some((at, report));
            break;
        }
    }
    let Some((at, report)) = hit else {
        panic!(
            "{bench} {}: no aimed crash instant landed mid-persist \
             (persist windows at {:?})",
            technique.label(),
            persists
        );
    };

    // The fallback recovery must satisfy the golden model, not just
    // the app's own check.
    let mut cfg = base(4).with_recovery(persist_recovery());
    cfg.faults = cfg.faults.with_node_crash(NodeCrash {
        node: VICTIM,
        at,
        restart_after: None,
    });
    let verdict = check_technique(bench, Scale::Test, technique, cfg)
        .unwrap_or_else(|e| panic!("{bench} {} oracle: {e:?}", technique.label()));
    if !verdict.ok() {
        fail_with_artifact(
            &format!("{}-{}-oracle", bench.name(), technique.label()),
            &report,
            format!(
                "oracle failed on slot-fallback recovery at {at}: {}",
                verdict.summary_line()
            ),
        );
    }
}

/// Default tier: one cell, seeded scan. The acceptance cell — a crash
/// inside the persist window recovers from the previous committed
/// slot and still passes the oracle.
#[test]
fn seeded_crash_mid_persist_falls_back() {
    sweep_cell(
        Benchmark::Radix,
        Technique::Base,
        &[(3, 10), (4, 10), (5, 10), (6, 10), (7, 10)],
    );
}

/// Full tier: crash-at-any-point sweep over RADIX/FFT × every
/// technique, eight instants per cell, fanned across cores.
#[test]
fn full_matrix_crash_at_any_point() {
    if !full_grid() {
        eprintln!("skipping full persist matrix (set RSDSM_PERSIST_MATRIX=full)");
        return;
    }
    let offsets: Vec<(u64, u64)> = (2..10).map(|k| (k, 10)).collect();
    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for bench in [Benchmark::Radix, Benchmark::Fft] {
        for technique in Technique::ALL {
            let offsets = offsets.clone();
            tasks.push(Box::new(move || sweep_cell(bench, technique, &offsets)));
        }
    }
    pool::run(pool::matrix_jobs(), tasks);
}

/// A crash schedule whose recovery has no checkpoint cadence is a
/// configuration error, not a silent recover-from-nothing.
#[test]
#[should_panic(expected = "--fault-crash without --checkpoint-every")]
fn crash_without_cadence_fails_fast() {
    let mut cfg = base(4).with_recovery(RecoveryConfig {
        checkpoint_every: 0,
        ..RecoveryConfig::on(2)
    });
    cfg.faults = cfg.faults.with_node_crash(NodeCrash {
        node: VICTIM,
        at: SimTime::ZERO + SimDuration::from_millis(1),
        restart_after: None,
    });
    let _ = Benchmark::Radix.run(Scale::Test, cfg);
}

/// Persistence with nothing to persist is equally a configuration
/// error.
#[test]
#[should_panic(expected = "--persist needs --checkpoint-every")]
fn persist_without_cadence_fails_fast() {
    let cfg = base(4).with_recovery(RecoveryConfig {
        persist: PersistConfig::on(),
        ..RecoveryConfig::off()
    });
    let _ = Benchmark::Radix.run(Scale::Test, cfg);
}

/// The `persist:` summary segment is gated on the config switch: a
/// persistence-off crash run emits the exact pre-persistence line
/// (byte-compatibility for every pinned summary), a persistence-on
/// run appends the device counters.
#[test]
fn summary_segment_gated_on_config() {
    let crash = NodeCrash {
        node: VICTIM,
        at: SimTime::ZERO + SimDuration::from_millis(2),
        restart_after: None,
    };

    let mut off = base(4).with_recovery(RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(2)
    });
    off.faults = off.faults.with_node_crash(crash);
    let line = Benchmark::Radix
        .run(Scale::Test, off)
        .expect("persistence-off crash run")
        .fault_summary_line()
        .expect("crash run has a summary line");
    assert!(
        !line.contains("persist:"),
        "persistence-off summary grew a persist segment: {line}"
    );

    let mut on = base(4).with_recovery(persist_recovery());
    on.faults = on.faults.with_node_crash(crash);
    let line = Benchmark::Radix
        .run(Scale::Test, on)
        .expect("persistence-on crash run")
        .fault_summary_line()
        .expect("crash run has a summary line");
    assert!(
        line.contains("; persist: ") && line.contains("flushes"),
        "persistence-on summary is missing the persist segment: {line}"
    );
}

/// Device parameters are inert while `enabled` is off: a run carrying
/// non-default bandwidth/fence numbers (but persistence disabled) is
/// digest-identical to the stock run once the explicitly-inert config
/// field is factored out — the persistence plumbing charges nothing,
/// draws nothing, and schedules nothing unless switched on.
#[test]
fn disabled_persistence_is_digest_transparent() {
    let plain = Benchmark::Radix
        .run(Scale::Test, base(4))
        .expect("plain run");

    let mut cfg = base(4);
    cfg.recovery.persist = PersistConfig {
        enabled: false,
        write_bw: 7,
        read_bw: 9,
        fence_latency: SimDuration::from_micros(123),
        sector_bytes: 64,
    };
    let mut tweaked = Benchmark::Radix.run(Scale::Test, cfg).expect("tweaked run");
    assert_eq!(tweaked.recovery.torn_discards, 0);
    assert_eq!(tweaked.recovery.slot_fallbacks, 0);

    tweaked.config.recovery.persist = PersistConfig::off();
    assert_eq!(
        plain.digest(),
        tweaked.digest(),
        "disabled persistence perturbed a run"
    );
}
