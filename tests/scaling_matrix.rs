//! The scale-out matrix: switched topologies and directory-sharded
//! homes carry the full oracle obligation at 64 nodes, the flat-bus
//! default provably changes nothing, hierarchical failure monitoring
//! sends O(N) heartbeats per idle round instead of O(N²), and the
//! 256/1024-node tiers complete under the wheel engine.
//!
//! The default run covers the 64-node fast subset so `cargo test`
//! stays fast; set `RSDSM_SCALING_MATRIX=full` for the 256- and
//! 1024-node tiers.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{
    BarrierId, DirectoryConfig, DirectoryPolicy, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy,
    RecoveryConfig, SharedVec, Simulation, Topology, PAGE_SIZE,
};
use rsdsm::oracle::{check_technique, Technique};
use rsdsm::simnet::SimDuration;
use rsdsm_bench::pool;

const WORDS: usize = PAGE_SIZE / 8;

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

/// The scaling suite's default fabric: racks of 8, two spines, 4:1
/// oversubscription.
fn fabric() -> Topology {
    Topology::rack_spine(8, 2, 4)
}

fn full_matrix_enabled() -> bool {
    std::env::var("RSDSM_SCALING_MATRIX").as_deref() == Ok("full")
}

/// Every node reads a few pages homed on node 0, then meets at a
/// barrier — the hot-spot micro-study from the scaling bench,
/// restated here so the big tiers have a memory-feasible (read-only,
/// no write intervals) workload.
struct HotSpot;

impl DsmProgram for HotSpot {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "hotspot".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(8 * WORDS, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, v: &Self::Handles) {
        for p in 0..8 {
            let _ = ctx.read(v, p * WORDS);
        }
        ctx.barrier(BarrierId(0));
    }
}

/// One full-oracle cell: DSM run + golden sequential replay +
/// byte-for-byte image comparison + same-seed repeat determinism.
fn assert_oracle_cell(bench: Benchmark, technique: Technique, cfg: DsmConfig, label: &str) {
    let verdict = check_technique(bench, Scale::Test, technique, cfg)
        .unwrap_or_else(|e| panic!("{label}: {e:?}"));
    assert!(verdict.ok(), "{label}: {}", verdict.summary_line());
}

/// 64 nodes on the rack-and-spine fabric, homes sharded by every
/// policy, under the complete oracle obligation. The golden executor
/// knows nothing about topologies or directories, so a pass means the
/// scaled-out cluster still computes exactly what a sequential
/// machine would.
#[test]
fn oracle_holds_at_64_nodes_on_the_fabric() {
    // RADIX's shared histogram caps the run at 64 threads, so the
    // two-threads-per-node Combined technique gets its fabric +
    // directory coverage at 32 nodes instead.
    let cells: Vec<(usize, Benchmark, Technique, DirectoryPolicy)> = vec![
        (64, Benchmark::Radix, Technique::Base, DirectoryPolicy::Hash),
        (
            64,
            Benchmark::Radix,
            Technique::Prefetch,
            DirectoryPolicy::FirstTouch,
        ),
        (64, Benchmark::Fft, Technique::Base, DirectoryPolicy::Block),
        (
            32,
            Benchmark::Radix,
            Technique::Combined,
            DirectoryPolicy::Hash,
        ),
    ];
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|(nodes, bench, technique, policy)| {
            move || {
                let cfg = base(nodes)
                    .with_topology(fabric())
                    .with_directory(DirectoryConfig::on(policy));
                let label = format!(
                    "{bench} {} fabric+{policy:?} at {nodes} nodes",
                    technique.label()
                );
                assert_oracle_cell(bench, technique, cfg, &label);
            }
        })
        .collect();
    pool::run(pool::matrix_jobs(), tasks);
}

/// Digest transparency: the topology and directory knobs at their
/// defaults are not merely "probably inert" — a run with both spelled
/// out explicitly reproduces the pre-existing pinned trace digest
/// from `trace_snapshots.rs` bit for bit, and the full report digest
/// of an untouched run.
#[test]
fn flat_bus_default_reproduces_pinned_digests() {
    let explicit = base(4)
        .with_topology(Topology::FlatBus)
        .with_directory(DirectoryConfig::off());
    let (report, trace) = Benchmark::Radix
        .run_traced(Scale::Test, explicit)
        .expect("explicit flat-bus run");
    // The pinned RADIX/Base cell from tests/trace_snapshots.rs.
    assert_eq!(
        trace.digest(),
        0x249303d259b67b8e,
        "explicit FlatBus + directory-off perturbed the pinned trace"
    );
    let plain = Benchmark::Radix
        .run(Scale::Test, base(4))
        .expect("default run");
    assert_eq!(
        plain.digest(),
        report.digest(),
        "spelling out the defaults changed the report"
    );
}

/// An idle-ish program long enough to cover many heartbeat rounds.
struct IdleRounds;

impl DsmProgram for IdleRounds {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "idle-rounds".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(WORDS, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, _v: &Self::Handles) {
        ctx.compute(SimDuration::from_millis(100));
        ctx.barrier(BarrierId(0));
    }
}

/// Heartbeat cadence a 4:1-oversubscribed fabric can actually carry
/// under the full mesh: at 64 nodes the mesh pushes N·(N−1) frames
/// per round through the rack trunks, and a sub-millisecond period
/// saturates them — lease expiries then feed a reliable-transport
/// suspicion storm. 5 ms rounds keep the mesh baseline itself
/// terminating so the counts can be compared.
fn monitored_run(nodes: usize, hierarchical: bool) -> rsdsm::core::RunReport {
    let recovery = RecoveryConfig {
        heartbeat_every: SimDuration::from_millis(5),
        lease_timeout: SimDuration::from_millis(25),
        confirm_grace: SimDuration::from_millis(5),
        hierarchical,
        ..RecoveryConfig::on(2)
    };
    let cfg = base(nodes).with_topology(fabric()).with_recovery(recovery);
    Simulation::new(cfg).run(&IdleRounds).expect("idle run")
}

/// The O(N²) fix: with hierarchical monitoring each idle heartbeat
/// round sends O(N) heartbeats (members → rack leader, leaders ↔
/// manager) instead of the all-to-all mesh's N·(N−1).
#[test]
fn hierarchical_monitoring_sends_linear_heartbeats_per_round() {
    let nodes = 64;
    let mesh = monitored_run(nodes, false);
    let hier = monitored_run(nodes, true);
    assert!(mesh.verified && hier.verified);

    let rounds = |r: &rsdsm::core::RunReport| {
        (r.total_time.as_nanos() / SimDuration::from_millis(5).as_nanos()).max(1)
    };
    let mesh_per_round = mesh.recovery.heartbeats_sent / rounds(&mesh);
    let hier_per_round = hier.recovery.heartbeats_sent / rounds(&hier);
    let n = nodes as u64;

    // The mesh really is quadratic-shaped (sanity check on the test
    // itself)…
    assert!(
        mesh_per_round > n * (n - 1) / 2,
        "mesh sent only {mesh_per_round} heartbeats/round at {n} nodes"
    );
    // …and the hierarchy is linear: every member sends 1, every rack
    // leader ≤ rack_size + 1, the manager ≤ racks + rack_size.
    assert!(
        hier_per_round <= 4 * n,
        "hierarchical monitoring sent {hier_per_round} heartbeats/round \
         at {n} nodes — not O(N)"
    );
    assert!(
        hier.recovery.heartbeats_sent * 8 < mesh.recovery.heartbeats_sent,
        "hierarchy ({}) barely improved on the mesh ({})",
        hier.recovery.heartbeats_sent,
        mesh.recovery.heartbeats_sent
    );
}

/// Directory sharding prunes notices at uninterested nodes without
/// breaking anything the oracle can see; the counters prove the
/// machinery actually engaged at 64 nodes.
#[test]
fn directory_counters_engage_at_64_nodes() {
    let cfg = base(64)
        .with_topology(fabric())
        .with_directory(DirectoryConfig::on(DirectoryPolicy::Hash));
    let report = Simulation::new(cfg).run(&HotSpot).expect("hot-spot run");
    assert!(report.verified);
    assert!(
        report.directory.home_hits > 0,
        "no fetch ever reached a sharded home"
    );
    let line = report.fault_summary_line().expect("directory section");
    assert!(
        line.contains("directory:"),
        "summary line lost the directory section: {line}"
    );
}

/// The 256- and 1024-node tiers, behind `RSDSM_SCALING_MATRIX=full`:
/// the oracle obligation at 256 nodes, and the 1024-node hot-spot —
/// the issue's scaling ceiling — completing under the wheel engine.
#[test]
fn full_matrix_big_tiers() {
    if !full_matrix_enabled() {
        eprintln!("skipping 256/1024-node tiers (set RSDSM_SCALING_MATRIX=full)");
        return;
    }
    let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
        Box::new(|| {
            // RADIX's histogram caps at 64 threads; FFT's six-step
            // blocks simply go empty on surplus nodes, so it is the
            // kernel that scales to the 256-node oracle cell.
            let cfg = base(256)
                .with_topology(fabric())
                .with_directory(DirectoryConfig::on(DirectoryPolicy::Hash));
            assert_oracle_cell(
                Benchmark::Fft,
                Technique::Base,
                cfg,
                "FFT O fabric+Hash at 256 nodes",
            );
        }),
        Box::new(|| {
            for policy in [DirectoryPolicy::Hash, DirectoryPolicy::FirstTouch] {
                let cfg = base(1024)
                    .with_topology(fabric())
                    .with_directory(DirectoryConfig::on(policy));
                let report = Simulation::new(cfg)
                    .run(&HotSpot)
                    .unwrap_or_else(|e| panic!("1024-node hot-spot ({policy:?}): {e}"));
                assert!(report.verified, "1024-node hot-spot ({policy:?}) corrupted");
                assert!(report.events_processed > 0);
            }
        }),
    ];
    pool::run(pool::matrix_jobs(), tasks);
}
