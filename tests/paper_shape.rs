//! Cross-crate integration tests asserting the paper's qualitative
//! results ("shape") hold in the reproduction, via the facade crate.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{Category, DsmConfig, PrefetchConfig, ThreadConfig};

fn base() -> DsmConfig {
    DsmConfig::paper_cluster(8).with_seed(1998)
}

/// §1.1 / Figure 1: communication latency dominates — most apps spend
/// a large fraction of their time stalled.
#[test]
fn baseline_is_stall_dominated() {
    let mut stalled_heavily = 0;
    for bench in [
        Benchmark::Fft,
        Benchmark::Radix,
        Benchmark::Ocean,
        Benchmark::WaterNsq,
    ] {
        let r = bench.run(Scale::Test, base()).expect("run");
        assert!(r.verified);
        let b = r.breakdown.normalized_to_self();
        let stalled = b.fraction(Category::MemoryIdle) + b.fraction(Category::SyncIdle);
        if stalled > 0.4 {
            stalled_heavily += 1;
        }
    }
    assert!(
        stalled_heavily >= 3,
        "most apps should spend much of their time stalled"
    );
}

/// §3.3 / Figure 2: prefetching reduces memory stall time and remote
/// misses on the prefetch-friendly applications.
#[test]
fn prefetching_reduces_memory_stalls() {
    for bench in [Benchmark::Fft, Benchmark::Radix] {
        let orig = bench.run(Scale::Default, base()).expect("original");
        let pf = bench
            .run(Scale::Default, base().with_prefetch(bench.paper_prefetch()))
            .expect("prefetch");
        assert!(pf.verified, "{bench}: non-binding prefetching must be safe");
        assert!(
            pf.breakdown[Category::MemoryIdle] < orig.breakdown[Category::MemoryIdle],
            "{bench}: memory idle must shrink"
        );
        assert!(
            pf.misses.misses < orig.misses.misses,
            "{bench}: remote misses must shrink"
        );
        assert!(pf.prefetch.coverage() > 0.5, "{bench}: coverage too low");
    }
}

/// §3.3.2 / Table 1: prefetching compresses traffic into bursts, so
/// the misses that remain get slower (queueing), not faster.
#[test]
fn prefetching_inflates_residual_miss_latency_for_fft() {
    let orig = Benchmark::Fft
        .run(Scale::Default, base())
        .expect("original");
    let pf = Benchmark::Fft
        .run(
            Scale::Default,
            base().with_prefetch(Benchmark::Fft.paper_prefetch()),
        )
        .expect("prefetch");
    // The paper reports a 12x inflation at full scale; we only assert
    // the direction (no speed-up of the residual misses).
    assert!(
        pf.misses.avg_latency() >= orig.misses.avg_latency() / 2,
        "residual misses should not get dramatically faster"
    );
    // And some prefetch messages are dropped or delayed under burst.
    assert!(pf.prefetch.messages > 0);
}

/// §4.3 / Figure 4: multithreading overlaps memory stalls (per-node
/// memory idle falls as threads are added) at the cost of switch and
/// asynchronous-arrival overheads.
#[test]
fn multithreading_hides_memory_idle() {
    let orig = Benchmark::Fft
        .run(Scale::Default, base())
        .expect("original");
    let mt = Benchmark::Fft
        .run(
            Scale::Default,
            base().with_threads(ThreadConfig::multithreaded(4)),
        )
        .expect("4T");
    assert!(mt.verified);
    assert!(
        mt.breakdown[Category::MemoryIdle] < orig.breakdown[Category::MemoryIdle],
        "memory idle must shrink with threads"
    );
    assert!(mt.mt.switches > 0);
    assert!(
        mt.breakdown[Category::MtOverhead] > rsdsm::simnet::SimDuration::ZERO,
        "switching is not free"
    );
    // Table 2: run lengths shrink as stalls are split across threads.
    assert!(mt.mt.avg_run_length() < orig.mt.avg_run_length());
}

/// §5: in the combined approach, prefetching owns memory latency and
/// multithreading owns synchronization latency; for the lock-heavy
/// WATER-NSQ the combination beats pure multithreading.
#[test]
fn combined_beats_pure_multithreading_for_water_nsq() {
    let mt = Benchmark::WaterNsq
        .run(
            Scale::Default,
            base().with_threads(ThreadConfig::multithreaded(2)),
        )
        .expect("2T");
    let combined = Benchmark::WaterNsq
        .run(
            Scale::Default,
            base()
                .with_threads(ThreadConfig::combined(2))
                .with_prefetch(PrefetchConfig {
                    suppress_redundant: true,
                    ..Benchmark::WaterNsq.paper_prefetch()
                }),
        )
        .expect("2TP");
    assert!(combined.verified && mt.verified);
    assert!(
        combined.total_time < mt.total_time,
        "combined ({}) should beat pure MT ({})",
        combined.total_time,
        mt.total_time
    );
}

/// Determinism: identical configuration and seed reproduce identical
/// measurements through the full stack.
#[test]
fn full_stack_determinism() {
    let r1 = Benchmark::WaterSp.run(Scale::Test, base()).expect("run 1");
    let r2 = Benchmark::WaterSp.run(Scale::Test, base()).expect("run 2");
    assert_eq!(r1.total_time, r2.total_time);
    assert_eq!(r1.net.total_bytes, r2.net.total_bytes);
    assert_eq!(r1.misses.misses, r2.misses.misses);
    assert_eq!(r1.mt.switches, r2.mt.switches);
}

/// Different seeds perturb the network (drop lottery) but never
/// correctness.
#[test]
fn seeds_never_affect_correctness() {
    for seed in [1, 2, 3] {
        let r = Benchmark::LuCont
            .run(
                Scale::Test,
                DsmConfig::paper_cluster(4)
                    .with_seed(seed)
                    .with_prefetch(Benchmark::LuCont.paper_prefetch()),
            )
            .expect("run");
        assert!(r.verified, "seed {seed} broke LU");
    }
}

/// The compiler-style prefetch emulation (FFT, LU-NCONT) wastes
/// prefetches on private data, inflating the unnecessary rate as in
/// Table 1.
#[test]
fn compiler_prefetching_is_more_wasteful() {
    let compiler = Benchmark::Fft
        .run(
            Scale::Default,
            base().with_prefetch(PrefetchConfig::compiler()),
        )
        .expect("compiler");
    let hand = Benchmark::Fft
        .run(Scale::Default, base().with_prefetch(PrefetchConfig::hand()))
        .expect("hand");
    assert!(
        compiler.prefetch.unnecessary_fraction() > hand.prefetch.unnecessary_fraction(),
        "compiler-style must waste more prefetches ({:.2} vs {:.2})",
        compiler.prefetch.unnecessary_fraction(),
        hand.prefetch.unnecessary_fraction()
    );
}

/// §3 / §6: hand-inserted prefetching beats the history-based
/// automatic alternative (Bianchini-style) — the reason the paper
/// studies explicit insertion.
#[test]
fn hand_prefetching_beats_automatic() {
    let hand = Benchmark::Sor
        .run(Scale::Default, base().with_prefetch(PrefetchConfig::hand()))
        .expect("hand");
    let auto = Benchmark::Sor
        .run(
            Scale::Default,
            base().with_prefetch(PrefetchConfig::automatic()),
        )
        .expect("auto");
    assert!(hand.verified && auto.verified);
    assert!(
        hand.prefetch.coverage() > auto.prefetch.coverage(),
        "hand coverage {:.2} must exceed automatic {:.2}",
        hand.prefetch.coverage(),
        auto.prefetch.coverage()
    );
    assert!(hand.total_time <= auto.total_time);
}
