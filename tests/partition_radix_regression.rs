//! Seeded regression anchors for network partitions: RADIX runs with
//! a mid-run cut of node 2, and every partition counter, the summary
//! line, and the run digest pinned — mirroring
//! `crash_radix_regression.rs` for the partition/quorum stack.
//!
//! The whole simulation is deterministic for a given (seed, config),
//! so these exact values must reproduce on every machine and every
//! run. If a legitimate change to the engine's message schedule or
//! partition protocol moves them (e.g. different freeze semantics,
//! new traffic during the cut), re-derive the constants by printing
//! `report.recovery` and `report.fault_injection` from these exact
//! configs — but treat any unexplained drift as a determinism bug
//! first.
//!
//! Both scenarios pin `recoveries == 0` and `crashes == 0`: the cut
//! makes the detector suspect node 2 (it is alive but unreachable),
//! and the quorum rule must park those suspicions rather than let
//! them escalate to a false `RecoveryStart` — the split-brain
//! guarantee, held as an exact counter, not just a property.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, Partition, RecoveryConfig, RunReport};
use rsdsm::simnet::{SimDuration, SimTime};

/// Fast lease parameters sized for `Scale::Test` runs (mirrors the
/// crash regression's).
fn test_recovery(checkpoint_every: u32) -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(checkpoint_every)
    }
}

/// Symmetric cut at 2 ms, healing at 7 ms: node 2 is severed from
/// {0, 1, 3} both ways, freezes under the quorum rule, and rejoins
/// through the checkpoint path after the heal.
fn cut_radix() -> RunReport {
    let mut cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_recovery(test_recovery(2));
    cfg.faults = cfg.faults.with_partition(Partition::cut(
        vec![vec![2]],
        SimTime::from_millis(2),
        SimDuration::from_millis(5),
    ));
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("cut RADIX run")
}

/// The same cut, one-way: node 2 cannot reach the majority but still
/// hears it — the classic false-suspicion trap for lease detectors
/// (the majority's leases on node 2 expire while node 2's own leases
/// stay fresh).
fn asym_cut_radix() -> RunReport {
    let mut cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_recovery(test_recovery(2));
    cfg.faults = cfg.faults.with_partition(Partition {
        groups: vec![vec![2]],
        at: SimTime::from_millis(2),
        heal_after: SimDuration::from_millis(5),
        asym: true,
    });
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("asym-cut RADIX run")
}

#[test]
fn symmetric_cut_counters_are_pinned() {
    let r = cut_radix();
    assert!(r.verified, "RADIX must verify across a node-2 cut");

    let v = r.recovery;
    assert_eq!(v.crashes, 0, "a cut is not a crash");
    assert_eq!(v.heartbeats_sent, 1249);
    assert_eq!(v.suspicions, 6);
    assert_eq!(
        v.false_suspicions, 6,
        "every suspicion during a cut is against a live node"
    );
    assert_eq!(v.frames_parked, 0);
    assert_eq!(v.checkpoints_taken, 8);
    assert_eq!(v.checkpoint_bytes, 210_279);
    assert_eq!(
        v.recoveries, 0,
        "the quorum rule must park cut-side suspicions, never confirm them"
    );
    assert_eq!(v.recovery_time, SimDuration::ZERO);
    assert_eq!(v.partitions, 1);
    assert_eq!(v.partition_freezes, 1);
    assert_eq!(v.partition_rejoins, 1);
    assert_eq!(v.partition_reconcile_time, SimDuration::from_millis(5));

    assert_eq!(r.fault_injection.partition_drops, 88);
}

#[test]
fn symmetric_cut_summary_line_is_pinned() {
    let r = cut_radix();
    assert_eq!(
        r.fault_summary_line().as_deref(),
        Some(
            "faults: 0 msgs dropped, 0 duplicated, 0 reordered; \
             transport: 5 retransmissions (max 3 attempts/frame), \
             1 duplicate frames suppressed; \
             prefetch: 0 requests lost, 0 replies lost; \
             recovery: 0 crashes, 6 suspicions (6 false), \
             8 checkpoints (210279 bytes), 0 recoveries (0 us down); \
             partition: 1 cuts, 88 frames cut, \
             1 frozen suspected-but-alive, 1 rejoins (5000 us reconcile)"
        )
    );
}

#[test]
fn asym_cut_counters_are_pinned() {
    let r = asym_cut_radix();
    assert!(r.verified, "RADIX must verify across a one-way cut");

    let v = r.recovery;
    assert_eq!(v.crashes, 0);
    assert_eq!(v.heartbeats_sent, 1053);
    assert_eq!(v.suspicions, 7);
    assert_eq!(v.false_suspicions, 7);
    assert_eq!(v.frames_parked, 0);
    assert_eq!(v.checkpoints_taken, 8);
    assert_eq!(v.checkpoint_bytes, 210_279);
    assert_eq!(
        v.recoveries, 0,
        "a one-way cut must not trick the manager into a RecoveryStart"
    );
    assert_eq!(v.partitions, 1);
    assert_eq!(v.partition_freezes, 1);
    assert_eq!(v.partition_rejoins, 1);
    assert_eq!(v.partition_reconcile_time, SimDuration::from_millis(5));

    // Only the minority→majority direction drops; the reverse leg
    // delivers, so far fewer frames die than under the symmetric cut.
    assert_eq!(r.fault_injection.partition_drops, 7);
}

#[test]
fn repeat_runs_are_digest_identical() {
    assert_eq!(cut_radix().digest(), cut_radix().digest());
    assert_eq!(asym_cut_radix().digest(), asym_cut_radix().digest());
}
