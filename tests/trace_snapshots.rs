//! Golden trace snapshots.
//!
//! Pinned `RTR1` digests and §3.3 prefetch taxonomy counters for
//! seeded RADIX and FFT under all four techniques. The trace digest
//! is a total-order fingerprint of the run, so any change to protocol
//! behaviour, event ordering, cost charging, or the trace encoding
//! itself lands here first — with the diverging cell named.
//!
//! When a change is *intentional* (new event type, protocol fix),
//! regenerate the pins by running the printed expression for each
//! cell and updating the table; the commit then documents the
//! behaviour change explicitly.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::DsmConfig;
use rsdsm::oracle::Technique;

fn cfg(bench: Benchmark, tech: Technique) -> DsmConfig {
    tech.configure(bench, DsmConfig::paper_cluster(4).with_seed(1998))
}

/// (app, technique, RTR1 digest, events,
///  prefetches issued, hits, too-late, invalidated, no-pf)
#[allow(clippy::type_complexity)]
const PINS: [(Benchmark, Technique, u64, usize, u64, u64, u64, u64, u64); 8] = [
    (
        Benchmark::Radix,
        Technique::Base,
        0x249303d259b67b8e,
        811,
        0,
        0,
        0,
        0,
        30,
    ),
    (
        Benchmark::Radix,
        Technique::Prefetch,
        0x51ef5dc9d33ba5ac,
        769,
        17,
        11,
        6,
        0,
        13,
    ),
    (
        Benchmark::Radix,
        Technique::Multithread,
        0x57962b9bc60d69bd,
        1098,
        0,
        0,
        0,
        0,
        41,
    ),
    (
        Benchmark::Radix,
        Technique::Combined,
        0xf60b890b78c171e5,
        1117,
        10,
        2,
        8,
        0,
        24,
    ),
    (
        Benchmark::Fft,
        Technique::Base,
        0xf84e0fffd2fce0ae,
        661,
        0,
        0,
        0,
        0,
        39,
    ),
    (
        Benchmark::Fft,
        Technique::Prefetch,
        0xc6cd8ed51cf5c48b,
        666,
        36,
        21,
        15,
        0,
        3,
    ),
    (
        Benchmark::Fft,
        Technique::Multithread,
        0xfac0a249a4805766,
        878,
        0,
        0,
        0,
        0,
        39,
    ),
    (
        Benchmark::Fft,
        Technique::Combined,
        0x96ad0d44bd8ffa81,
        766,
        36,
        22,
        14,
        0,
        3,
    ),
];

#[test]
fn trace_digests_and_prefetch_taxonomy_are_pinned() {
    for (bench, tech, digest, events, issued, hits, too_late, invalidated, no_pf) in PINS {
        let (report, trace) = bench
            .run_traced(Scale::Test, cfg(bench, tech))
            .unwrap_or_else(|e| panic!("{bench} [{}]: {e}", tech.label()));
        let cell = format!("{bench} [{}]", tech.label());
        assert_eq!(
            trace.digest(),
            digest,
            "{cell}: trace digest moved (got 0x{:016x}, {} events) — \
             the run's event stream changed",
            trace.digest(),
            trace.len(),
        );
        assert_eq!(trace.len(), events, "{cell}: event count moved");
        let p = &report.trace.expect("traced run carries metrics").prefetch;
        assert_eq!(
            (p.issued, p.hits, p.too_late, p.invalidated, p.no_pf),
            (issued, hits, too_late, invalidated, no_pf),
            "{cell}: §3.3 prefetch taxonomy moved",
        );
        // The trace-derived taxonomy must agree with the engine's own
        // fast-path counters — two independent paths to Figure 3.
        assert_eq!(p.hits, report.prefetch.hits, "{cell}: hit counters split");
        assert_eq!(
            p.too_late, report.prefetch.too_late,
            "{cell}: too-late counters split"
        );
        assert_eq!(
            p.invalidated, report.prefetch.invalidated,
            "{cell}: invalidated counters split"
        );
        assert_eq!(
            p.no_pf, report.prefetch.no_pf,
            "{cell}: no-pf counters split"
        );
    }
}

/// The derived ratios stay in range and NaN-free for every pinned
/// cell (the zero-prefetch cells exercise the 0/0 guards).
#[test]
fn derived_prefetch_ratios_are_finite() {
    for (bench, tech, ..) in PINS {
        let (report, _) = bench
            .run_traced(Scale::Test, cfg(bench, tech))
            .unwrap_or_else(|e| panic!("{bench} [{}]: {e}", tech.label()));
        let p = report.trace.expect("metrics").prefetch;
        for (name, v) in [
            ("coverage", p.coverage()),
            ("accuracy", p.accuracy()),
            ("lateness", p.lateness()),
        ] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "{bench} [{}]: {name} = {v} out of range",
                tech.label()
            );
        }
    }
}
