//! Seeded regression anchor for the fault-injection + reliable
//! transport stack: one lossy RADIX run with every counter pinned.
//!
//! The whole simulation is deterministic for a given (seed, config),
//! so these exact values must reproduce on every machine and every
//! run. If a legitimate change to the engine's message schedule moves
//! them (e.g. a new message type, a cost-model change), re-derive the
//! constants by printing `report.transport` / `report.fault_injection`
//! from this exact config — but treat any unexplained drift as a
//! determinism bug first.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, RunReport};
use rsdsm::simnet::{FaultPlan, SimTime};

fn lossy_radix() -> RunReport {
    let cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_faults(FaultPlan::uniform_loss(0xFA11, 0.20));
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("lossy RADIX run")
}

#[test]
fn transport_and_fault_counters_are_pinned() {
    let r = lossy_radix();
    assert!(r.verified, "RADIX must verify under 20% loss");

    let t = r.transport;
    assert_eq!(t.data_frames, 144);
    assert_eq!(t.retransmissions, 90);
    assert_eq!(t.acks_sent, 183);
    assert_eq!(t.dup_frames_suppressed, 39);
    assert_eq!(t.buffered_out_of_order, 9);
    assert_eq!(t.spurious_timeouts, 130);
    assert_eq!(t.max_attempts, 6);

    let f = r.fault_injection;
    assert_eq!(f.injected_drops, 94);
    assert_eq!(f.duplicates, 0);
    assert_eq!(f.reordered, 0);
    assert_eq!(f.stall_delays, 0);
    assert_eq!(f.degraded_msgs, 0);
}

#[test]
fn fault_summary_line_is_pinned() {
    let r = lossy_radix();
    assert_eq!(
        r.fault_summary_line().as_deref(),
        Some(
            "faults: 94 msgs dropped, 0 duplicated, 0 reordered; \
             transport: 90 retransmissions (max 6 attempts/frame), \
             39 duplicate frames suppressed; \
             prefetch: 0 requests lost, 0 replies lost"
        )
    );
}

#[test]
fn repeat_runs_are_digest_identical() {
    // The report digest hashes the entire Debug rendering, so this is
    // the strongest cheap statement of run-to-run determinism.
    assert_eq!(lossy_radix().digest(), lossy_radix().digest());
}

/// 5%-loss variant with tracing on, pinning the trace-derived
/// retry-timeline metrics: which links retried, how often, when the
/// first and last retransmissions fired, and the largest RTO armed.
/// These come from the event trace, not the transport's counters, so
/// they pin the retry *schedule*, not just its totals.
#[test]
fn retry_timelines_are_pinned_under_5pct_loss() {
    let cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_faults(FaultPlan::uniform_loss(0xFA11, 0.05));
    let (report, trace) = Benchmark::Radix
        .run_traced(Scale::Test, cfg)
        .expect("traced lossy RADIX run");
    assert!(report.verified, "RADIX must verify under 5% loss");
    assert_eq!(trace.digest(), 0xc0aafddce7c33c6f, "trace digest moved");
    assert_eq!(trace.len(), 842);

    let m = report.trace.as_ref().expect("traced run carries metrics");
    // Every transport-counted retransmission appears in the trace.
    assert_eq!(m.total_retries(), report.transport.retransmissions);
    assert_eq!(m.total_retries(), 15);

    // (src, dst, retries, first ns, last ns, max RTO ns).
    let expected: [(u32, u32, u64, u64, u64, u64); 8] = [
        (0, 1, 3, 19_619_098, 25_243_140, 8_000_000),
        (0, 2, 1, 19_674_098, 19_674_098, 8_000_000),
        (0, 3, 3, 11_987_829, 25_573_140, 8_000_000),
        (2, 0, 2, 19_903_322, 27_958_322, 16_000_000),
        (2, 1, 2, 14_261_840, 31_403_803, 8_000_000),
        (2, 3, 1, 5_487_545, 5_487_545, 8_000_000),
        (3, 0, 2, 5_288_049, 15_379_738, 8_000_000),
        (3, 2, 1, 14_557_199, 14_557_199, 8_000_000),
    ];
    assert_eq!(m.retry_links.len(), expected.len(), "retrying links moved");
    for (link, (src, dst, retries, first, last, max_rto)) in m.retry_links.iter().zip(expected) {
        let name = format!("link n{src}->n{dst}");
        assert_eq!((link.src, link.dst), (src, dst), "{name}: order moved");
        assert_eq!(link.retries, retries, "{name}: retry count moved");
        assert_eq!(
            link.first,
            SimTime::from_nanos(first),
            "{name}: first retry moved"
        );
        assert_eq!(
            link.last,
            SimTime::from_nanos(last),
            "{name}: last retry moved"
        );
        assert_eq!(link.max_rto.as_nanos(), max_rto, "{name}: max RTO moved");
    }
}
