//! Seeded regression anchor for the fault-injection + reliable
//! transport stack: one lossy RADIX run with every counter pinned.
//!
//! The whole simulation is deterministic for a given (seed, config),
//! so these exact values must reproduce on every machine and every
//! run. If a legitimate change to the engine's message schedule moves
//! them (e.g. a new message type, a cost-model change), re-derive the
//! constants by printing `report.transport` / `report.fault_injection`
//! from this exact config — but treat any unexplained drift as a
//! determinism bug first.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, RunReport};
use rsdsm::simnet::FaultPlan;

fn lossy_radix() -> RunReport {
    let cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_faults(FaultPlan::uniform_loss(0xFA11, 0.20));
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("lossy RADIX run")
}

#[test]
fn transport_and_fault_counters_are_pinned() {
    let r = lossy_radix();
    assert!(r.verified, "RADIX must verify under 20% loss");

    let t = r.transport;
    assert_eq!(t.data_frames, 144);
    assert_eq!(t.retransmissions, 90);
    assert_eq!(t.acks_sent, 183);
    assert_eq!(t.dup_frames_suppressed, 39);
    assert_eq!(t.buffered_out_of_order, 9);
    assert_eq!(t.spurious_timeouts, 130);
    assert_eq!(t.max_attempts, 6);

    let f = r.fault_injection;
    assert_eq!(f.injected_drops, 94);
    assert_eq!(f.duplicates, 0);
    assert_eq!(f.reordered, 0);
    assert_eq!(f.stall_delays, 0);
    assert_eq!(f.degraded_msgs, 0);
}

#[test]
fn fault_summary_line_is_pinned() {
    let r = lossy_radix();
    assert_eq!(
        r.fault_summary_line().as_deref(),
        Some(
            "faults: 94 msgs dropped, 0 duplicated, 0 reordered; \
             transport: 90 retransmissions (max 6 attempts/frame), \
             39 duplicate frames suppressed; \
             prefetch: 0 requests lost, 0 replies lost"
        )
    );
}

#[test]
fn repeat_runs_are_digest_identical() {
    // The report digest hashes the entire Debug rendering, so this is
    // the strongest cheap statement of run-to-run determinism.
    assert_eq!(lossy_radix().digest(), lossy_radix().digest());
}
