//! The partition matrix: every application survives a mid-run network
//! partition — a clean symmetric cut + heal, an asymmetric (one-way)
//! cut, and a cut timed to land exactly on a checkpoint capture —
//! under every latency-tolerance technique, with the full oracle
//! obligation intact: zero invariant violations, a final memory image
//! byte-identical to the golden sequential executor, digest-identical
//! same-seed repeat runs, and both executions passing the
//! application's own verification.
//!
//! On top of the oracle checks, every cell asserts the quorum rule's
//! split-brain guarantees: the suspected-but-alive minority node is
//! *never* confirmed down (zero `RecoveryStart`s, zero crash
//! recoveries), and it always reconciles back in through the
//! checkpoint/replay path after the heal.
//!
//! Each cell sizes the cut from a partition-free dry run of the same
//! configuration: the cut lands at half the dry run's completion time
//! (or, in the during-checkpoint mode, at the exact timestamp of a
//! dry-run checkpoint capture) and heals 5 ms later.
//!
//! The default run covers a smoke-sized subset so `cargo test` stays
//! fast; set `RSDSM_PARTITION_MATRIX=full` for the full 8 apps ×
//! {O, P, 2T, 2TP} × {clean, asym, during-checkpoint} grid. Cells are
//! independent simulations and fan out across cores via
//! `rsdsm_bench::pool` (override the worker count with `RSDSM_JOBS`).

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, Partition, RecoveryConfig, TraceEvent};
use rsdsm::oracle::{check_technique, Technique};
use rsdsm::simnet::{SimDuration, SimTime};
use rsdsm_bench::pool;

/// The minority node. Node 0 hosts the managers and must keep its
/// majority; cutting any single other node away satisfies the quorum
/// rule in a 4-node cluster (3 of 4 stay on the manager's side).
const MINORITY: usize = 2;

/// How long every cut stays open before healing.
const HEAL_AFTER: SimDuration = SimDuration::from_millis(5);

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

/// Lease parameters sized for `Scale::Test` runs (mirrors the crash
/// matrix's).
fn test_recovery() -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(2)
    }
}

fn full_grid() -> bool {
    std::env::var("RSDSM_PARTITION_MATRIX").as_deref() == Ok("full")
}

/// The three cut shapes each cell can run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Symmetric cut at half the dry run, heal 5 ms later.
    Clean,
    /// One-way cut: the minority cannot reach the majority but still
    /// hears it — the classic false-suspicion trap.
    Asym,
    /// Symmetric cut timed to the exact instant of a dry-run
    /// checkpoint capture.
    DuringCheckpoint,
}

/// Fans independent partition cells across cores; a panicking cell
/// fails the test via [`pool::run`]'s panic propagation.
fn assert_cells(cells: Vec<(Benchmark, Technique, Mode)>) {
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|(bench, technique, mode)| move || assert_cell(bench, technique, mode))
        .collect();
    pool::run(pool::matrix_jobs(), tasks);
}

/// Picks the cut instant for one cell from a partition-free dry run.
fn cut_instant(bench: Benchmark, technique: Technique, cfg: &DsmConfig, mode: Mode) -> SimTime {
    if mode == Mode::DuringCheckpoint {
        // Land the cut exactly on a checkpoint capture: trace the dry
        // run and take the first capture past a quarter of the run.
        let (dry, trace) = bench
            .run_traced(Scale::Test, technique.configure(bench, cfg.clone()))
            .unwrap_or_else(|e| panic!("{bench} {} traced dry run: {e}", technique.label()));
        let quarter = SimTime::ZERO + dry.total_time / 4;
        let ckpt = trace
            .records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::CheckpointTaken { .. }))
            .map(|r| r.at)
            .find(|&at| at >= quarter);
        if let Some(at) = ckpt {
            return at;
        }
        // No capture late enough (few barriers): fall through to mid.
    }
    let dry = bench
        .run(Scale::Test, technique.configure(bench, cfg.clone()))
        .unwrap_or_else(|e| panic!("{bench} {} dry run: {e}", technique.label()));
    SimTime::ZERO + dry.total_time / 2
}

/// One cell: dry-run for timing, cut the minority away mid-run, heal,
/// assert the quorum rule held, then run the full oracle check
/// (DSM run + golden model + repeat run) on the cut configuration.
fn assert_cell(bench: Benchmark, technique: Technique, mode: Mode) {
    let cfg = base(4).with_recovery(test_recovery());
    let at = cut_instant(bench, technique, &cfg, mode);

    let mut cfg = cfg;
    cfg.faults = cfg.faults.with_partition(Partition {
        groups: vec![vec![MINORITY]],
        at,
        heal_after: HEAL_AFTER,
        asym: mode == Mode::Asym,
    });
    let cut = bench
        .run(Scale::Test, technique.configure(bench, cfg.clone()))
        .unwrap_or_else(|e| panic!("{bench} {} {mode:?} cut at {at}: {e}", technique.label()));
    let label = format!("{bench} {} {mode:?}", technique.label());
    assert!(cut.verified, "{label}: result corrupted by cut at {at}");
    let r = &cut.recovery;
    assert_eq!(r.partitions, 1, "{label}: cut never executed");
    assert_eq!(r.partition_freezes, 1, "{label}: minority never froze");
    assert_eq!(r.partition_rejoins, 1, "{label}: minority never rejoined");
    assert!(
        r.partition_reconcile_time >= HEAL_AFTER,
        "{label}: reconcile shorter than the cut itself"
    );
    // The split-brain guarantee: a suspected-but-alive node is never
    // confirmed down — no RecoveryStart, no crash recovery, ever.
    assert_eq!(r.crashes, 0, "{label}: phantom crash recorded");
    assert_eq!(
        r.recoveries, 0,
        "{label}: false RecoveryStart on a suspected-but-alive node"
    );

    let verdict = check_technique(bench, Scale::Test, technique, cfg)
        .unwrap_or_else(|e| panic!("{label} oracle: {e:?}"));
    assert!(
        verdict.ok(),
        "oracle failed with {mode:?} cut at {at}: {}",
        verdict.summary_line()
    );
}

#[test]
fn fast_subset_clean_cut() {
    let mut cells = Vec::new();
    for bench in [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterNsq] {
        for technique in [Technique::Base, Technique::Combined] {
            cells.push((bench, technique, Mode::Clean));
        }
    }
    assert_cells(cells);
}

#[test]
fn fast_subset_asym_and_checkpoint_cuts() {
    let mut cells = Vec::new();
    for bench in [Benchmark::Sor, Benchmark::Radix] {
        for technique in [Technique::Base, Technique::Combined] {
            cells.push((bench, technique, Mode::Asym));
            cells.push((bench, technique, Mode::DuringCheckpoint));
        }
    }
    assert_cells(cells);
}

/// The partition machinery is observer-free when unused: scheduling a
/// cut the run never reaches changes nothing about the simulation —
/// same events, same timings, same digest — once the config field
/// carrying the (inert) schedule is factored out.
#[test]
fn unused_partition_schedule_is_digest_transparent() {
    let cfg = base(4).with_recovery(test_recovery());
    let plain = Benchmark::Radix
        .run(Scale::Test, cfg.clone())
        .expect("plain run");
    let mut cfg_armed = cfg;
    cfg_armed.faults = cfg_armed.faults.with_partition(Partition::cut(
        vec![vec![MINORITY]],
        SimTime::from_millis(10_000),
        HEAL_AFTER,
    ));
    let mut armed = Benchmark::Radix
        .run(Scale::Test, cfg_armed)
        .expect("armed run");
    assert_eq!(armed.recovery.partitions, 0, "the far-future cut fired");
    assert_eq!(armed.fault_injection.partition_drops, 0);

    armed.config.faults.partitions.clear();
    assert_eq!(
        plain.digest(),
        armed.digest(),
        "an unreached partition schedule perturbed the run"
    );
}

/// The quorum rule's validation: a cut that strands the manager
/// without a strict majority is rejected outright.
#[test]
#[should_panic(expected = "strict majority")]
fn minority_manager_component_is_rejected() {
    let mut cfg = base(4).with_recovery(test_recovery());
    // {2, 3} vs {0, 1}: two against two — no strict majority.
    cfg.faults = cfg.faults.with_partition(Partition::cut(
        vec![vec![2, 3]],
        SimTime::from_millis(1),
        HEAL_AFTER,
    ));
    let _ = Benchmark::Radix.run(Scale::Test, cfg);
}

/// Partitions lean on the recovery layer (freeze, suspicion gating,
/// checkpoint rejoin); scheduling one without it is a plan error.
#[test]
#[should_panic(expected = "recovery enabled")]
fn partition_without_recovery_is_rejected() {
    let mut cfg = base(4);
    cfg.faults = cfg.faults.with_partition(Partition::cut(
        vec![vec![MINORITY]],
        SimTime::from_millis(1),
        HEAL_AFTER,
    ));
    let _ = Benchmark::Radix.run(Scale::Test, cfg);
}

#[test]
fn full_matrix() {
    if !full_grid() {
        eprintln!("skipping full partition matrix (set RSDSM_PARTITION_MATRIX=full)");
        return;
    }
    let mut cells = Vec::new();
    for bench in Benchmark::ALL {
        for technique in Technique::ALL {
            for mode in [Mode::Clean, Mode::Asym, Mode::DuringCheckpoint] {
                cells.push((bench, technique, mode));
            }
        }
    }
    assert_cells(cells);
}
