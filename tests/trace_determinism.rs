//! The trace-replay suite.
//!
//! The simulation is deterministic, so a trace digest is a
//! total-order fingerprint of a run. This suite locks down three
//! contracts the tracing layer makes:
//!
//! 1. **Determinism** — same (seed, config) ⇒ bit-identical `RTR1`
//!    bytes, twice over.
//! 2. **Zero observer effect** — a traced run reports exactly what
//!    the untraced run reports (`RunReport::digest()` unchanged).
//! 3. **Causality** — every `DiffApply` is causally linked to a
//!    `WriteNotice` for the same interval at the same node, an
//!    event-*ordering* invariant the consistency oracle cannot
//!    express over aggregates.
//!
//! The default grid is RADIX and FFT × O/P/2T/2TP so `cargo test`
//! stays fast; `RSDSM_TRACE_MATRIX=full` widens it to all eight
//! applications, fanned across cores via `rsdsm_bench::pool`
//! (override the worker count with `RSDSM_JOBS`). On any failure the offending run's Chrome trace
//! JSON is written under `target/trace-artifacts/` so the regression
//! arrives with its own timeline attached.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, Trace, TraceEvent};
use rsdsm::oracle::Technique;
use rsdsm::stats::chrome_trace_json;
use rsdsm_bench::pool;

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

/// Runs `check` once per (app, technique) grid cell, fanned across
/// cores; cell panics propagate through [`pool::run`].
fn for_each_cell(check: impl Fn(Benchmark, Technique) + Send + Sync) {
    let mut tasks = Vec::new();
    for bench in grid_apps() {
        for tech in Technique::ALL {
            let check = &check;
            tasks.push(move || check(bench, tech));
        }
    }
    pool::run(pool::matrix_jobs(), tasks);
}

fn grid_apps() -> Vec<Benchmark> {
    if std::env::var("RSDSM_TRACE_MATRIX").is_ok_and(|v| v == "full") {
        Benchmark::ALL.to_vec()
    } else {
        vec![Benchmark::Radix, Benchmark::Fft]
    }
}

/// Writes the run's Chrome trace next to the test binary and panics
/// with `msg`, so a failing ordering check ships its timeline.
fn fail_with_artifact(bench: Benchmark, tech: Technique, trace: &Trace, msg: String) -> ! {
    let dir = std::path::Path::new("target").join("trace-artifacts");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{}-{}.json", bench.name(), tech.label()));
    match std::fs::write(&path, chrome_trace_json(trace)) {
        Ok(()) => panic!("{msg}\n(trace artifact written to {})", path.display()),
        Err(e) => panic!("{msg}\n(artifact write to {} failed: {e})", path.display()),
    }
}

/// (1) Same seed ⇒ the same events in the same order, bit for bit.
#[test]
fn same_seed_traces_are_bit_identical() {
    for_each_cell(|bench, tech| {
        let cfg = || tech.configure(bench, base(4));
        let (_, a) = bench
            .run_traced(Scale::Test, cfg())
            .unwrap_or_else(|e| panic!("{bench} [{}] run 1: {e}", tech.label()));
        let (_, b) = bench
            .run_traced(Scale::Test, cfg())
            .unwrap_or_else(|e| panic!("{bench} [{}] run 2: {e}", tech.label()));
        assert!(
            !a.is_empty(),
            "{bench} [{}]: a real run must emit events",
            tech.label()
        );
        if a.digest() != b.digest() || a.encode() != b.encode() {
            fail_with_artifact(
                bench,
                tech,
                &a,
                format!(
                    "{bench} [{}]: same-seed traces diverged \
                         ({:016x} vs {:016x}, {} vs {} events)",
                    tech.label(),
                    a.digest(),
                    b.digest(),
                    a.len(),
                    b.len(),
                ),
            );
        }
    });
}

/// (2) Tracing must not perturb the run it observes: the traced
/// report digests identically to the untraced one, for every cell of
/// the fast matrix.
#[test]
fn tracing_has_zero_observer_effect() {
    for_each_cell(|bench, tech| {
        let cfg = || tech.configure(bench, base(4));
        let plain = bench
            .run(Scale::Test, cfg())
            .unwrap_or_else(|e| panic!("{bench} [{}] untraced: {e}", tech.label()));
        let (traced, trace) = bench
            .run_traced(Scale::Test, cfg())
            .unwrap_or_else(|e| panic!("{bench} [{}] traced: {e}", tech.label()));
        assert!(
            traced.trace.is_some(),
            "{bench} [{}]: traced run must carry trace metrics",
            tech.label()
        );
        if plain.digest() != traced.digest() {
            fail_with_artifact(
                bench,
                tech,
                &trace,
                format!(
                    "{bench} [{}]: tracing changed the run \
                         (untraced digest {:016x}, traced {:016x})",
                    tech.label(),
                    plain.digest(),
                    traced.digest(),
                ),
            );
        }
    });
}

/// (3) A diff may only be applied after its write notice is known at
/// the applying node: every `DiffApply` record must causally link a
/// prior `WriteNotice` for the same (page, origin, seq) at the same
/// node. The decoder already rejects forward causes, so resolving the
/// link proves "preceded by".
#[test]
fn every_diff_apply_is_caused_by_a_matching_write_notice() {
    for_each_cell(|bench, tech| {
        let cfg = tech.configure(bench, base(4));
        let (_, trace) = bench
            .run_traced(Scale::Test, cfg)
            .unwrap_or_else(|e| panic!("{bench} [{}]: {e}", tech.label()));
        let mut applies = 0u64;
        for (i, rec) in trace.records.iter().enumerate() {
            let TraceEvent::DiffApply { page, origin, seq } = rec.event else {
                continue;
            };
            applies += 1;
            let problem = if rec.cause == 0 || rec.cause as usize > i {
                Some("has no prior causal link".to_string())
            } else {
                let notice = &trace.records[rec.cause as usize - 1];
                match notice.event {
                    TraceEvent::WriteNotice {
                        page: np,
                        origin: no,
                        seq: ns,
                    } if np == page && no == origin && ns == seq && notice.node == rec.node => None,
                    ref other => Some(format!(
                        "links record {} ({:?} at node {}) instead of a matching notice",
                        rec.cause, other, notice.node
                    )),
                }
            };
            if let Some(why) = problem {
                fail_with_artifact(
                    bench,
                    tech,
                    &trace,
                    format!(
                        "{bench} [{}]: DiffApply #{i} (page {page}, origin {origin}, \
                             seq {seq}, node {}) {why}",
                        tech.label(),
                        rec.node,
                    ),
                );
            }
        }
        assert!(
            applies > 0,
            "{bench} [{}]: expected at least one applied diff",
            tech.label()
        );
    });
}

/// The `RTR1` bytes round-trip through the decoder, and the exporter
/// accepts a real trace (spot check of the end-to-end path the bench
/// `--trace` flag uses).
#[test]
fn real_traces_round_trip_and_export() {
    let (_, trace) = Benchmark::Radix
        .run_traced(
            Scale::Test,
            Technique::Combined.configure(Benchmark::Radix, base(4)),
        )
        .expect("traced RADIX 2TP");
    let decoded = Trace::decode(&trace.encode()).expect("decode RTR1");
    assert_eq!(decoded, trace);
    assert_eq!(decoded.digest(), trace.digest());
    let json = chrome_trace_json(&trace);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"name\":\"node 3\""));
}
