//! Seeded regression anchor for the scale-out stack: one 64-node
//! RADIX run on the rack-and-spine fabric with hash-sharded homes,
//! every scale-out observable pinned.
//!
//! The whole simulation is deterministic for a given (seed, config),
//! so these exact values must reproduce on every machine and every
//! run. If a legitimate change to routing, directory sharding, or the
//! cost model moves them, re-derive the constants by printing the
//! fields from this exact config — but treat any unexplained drift as
//! a determinism bug first.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DirectoryConfig, DirectoryPolicy, DsmConfig, RunReport, Topology};

fn scaled_radix() -> RunReport {
    let cfg = DsmConfig::paper_cluster(64)
        .with_seed(1998)
        .with_topology(Topology::rack_spine(8, 2, 4))
        .with_directory(DirectoryConfig::on(DirectoryPolicy::Hash));
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("64-node fabric RADIX run")
}

#[test]
fn report_digest_is_pinned() {
    let r = scaled_radix();
    assert!(r.verified, "RADIX must verify at 64 nodes on the fabric");
    assert_eq!(r.digest(), 0xd5495b7639d19b88, "report digest moved");
    assert_eq!(r.events_processed, 134_738);
}

#[test]
fn directory_counters_are_pinned() {
    let r = scaled_radix();
    let d = r.directory;
    assert_eq!(d.home_hits, 597);
    assert_eq!(d.forwards, 3148);
    assert_eq!(d.pruned, 3993);
    assert_eq!(d.migrations, 0, "Hash homes never migrate");
}

/// The fault/transport/directory one-liner, verbatim. The 20k
/// fault-free retransmissions are real: the 4:1-oversubscribed trunks
/// under RADIX's write-interval traffic delay frames past their RTOs
/// — the scale-out cousin of the paper's §3.1 retry behaviour.
#[test]
fn fault_summary_line_is_pinned() {
    let r = scaled_radix();
    assert_eq!(
        r.fault_summary_line().as_deref(),
        Some(
            "faults: 0 msgs dropped, 0 duplicated, 0 reordered; \
             transport: 20327 retransmissions (max 6 attempts/frame), \
             20311 duplicate frames suppressed; \
             prefetch: 0 requests lost, 0 replies lost; \
             directory: 597 home hits, 3148 heal forwards, \
             3993 notices pruned, 0 migrations"
        )
    );
}

#[test]
fn repeat_runs_are_digest_identical() {
    assert_eq!(scaled_radix().digest(), scaled_radix().digest());
}
