//! Seeded regression anchors for crash injection + lease-based
//! recovery: RADIX runs with mid-run node failures and every recovery
//! counter pinned, mirroring `lossy_radix_regression.rs` for the
//! fault/transport stack.
//!
//! The whole simulation is deterministic for a given (seed, config),
//! so these exact values must reproduce on every machine and every
//! run. If a legitimate change to the engine's message schedule or
//! recovery protocol moves them (e.g. a new message type, different
//! lease parameters), re-derive the constants by printing
//! `report.recovery` from these exact configs — but treat any
//! unexplained drift as a determinism bug first.
//!
//! The lease parameters are deliberately tight for `Scale::Test` runs
//! (1 ms lease against RADIX's bursty permutation traffic), so the
//! crash-stop scenario also exercises the false-suspicion path:
//! congestion delays droppable heartbeats past the lease, live peers
//! get suspected, and the manager's confirmation grace resolves them
//! without disturbing the run.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, RecoveryConfig, RunReport, TransportConfig};
use rsdsm::simnet::{NodeCrash, SimDuration, SimTime};

/// Fast lease parameters sized for `Scale::Test` runs (tens of
/// milliseconds of simulated time): detection settles well before the
/// run ends, without drowning the run in heartbeat traffic.
fn test_recovery(checkpoint_every: u32) -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(checkpoint_every)
    }
}

/// Crash-stop at 2 ms: node 2 dies, the detector notices, and a
/// replacement rejoins from its checkpoint.
fn crashed_radix() -> RunReport {
    let mut cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_recovery(test_recovery(2));
    cfg.faults = cfg.faults.with_node_crash(NodeCrash {
        node: 2,
        at: SimTime::from_millis(2),
        restart_after: None,
    });
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("crashed RADIX run")
}

/// Crash-restart with a 20 ms outage and a deliberately small retry
/// budget, so reliable frames toward the victim exhaust their retries
/// and take the park-and-resume path instead of aborting the run.
fn outage_radix() -> RunReport {
    let mut cfg = DsmConfig::paper_cluster(4)
        .with_seed(1998)
        .with_recovery(test_recovery(2))
        .with_transport(TransportConfig {
            initial_rto: SimDuration::from_millis(1),
            max_retries: 3,
            ..TransportConfig::default()
        });
    cfg.faults = cfg.faults.with_node_crash(NodeCrash {
        node: 2,
        at: SimTime::from_millis(2),
        restart_after: Some(SimDuration::from_millis(20)),
    });
    Benchmark::Radix
        .run(Scale::Test, cfg)
        .expect("outage RADIX run")
}

#[test]
fn crash_stop_counters_are_pinned() {
    let r = crashed_radix();
    assert!(r.verified, "RADIX must verify across a node-2 crash");

    let v = r.recovery;
    assert_eq!(v.crashes, 1);
    assert_eq!(v.heartbeats_sent, 802);
    assert_eq!(v.suspicions, 8);
    assert_eq!(v.false_suspicions, 6);
    assert_eq!(v.frames_parked, 0);
    assert_eq!(v.checkpoints_taken, 8);
    assert_eq!(v.checkpoint_bytes, 210_279);
    assert_eq!(v.recoveries, 1);
    assert_eq!(v.recovery_time, SimDuration::from_nanos(1_777_844));
}

#[test]
fn fault_summary_line_is_pinned() {
    let r = crashed_radix();
    assert_eq!(
        r.fault_summary_line().as_deref(),
        Some(
            "faults: 0 msgs dropped, 0 duplicated, 0 reordered; \
             transport: 2 retransmissions (max 2 attempts/frame), \
             1 duplicate frames suppressed; \
             prefetch: 0 requests lost, 0 replies lost; \
             recovery: 1 crashes, 8 suspicions (6 false), \
             8 checkpoints (210279 bytes), 1 recoveries (1777 us down)"
        )
    );
}

#[test]
fn crash_restart_parks_and_resumes() {
    let r = outage_radix();
    assert!(r.verified, "RADIX must verify across a 20 ms outage");

    let v = r.recovery;
    assert_eq!(v.crashes, 1);
    assert_eq!(v.heartbeats_sent, 1240);
    assert_eq!(v.suspicions, 8);
    assert_eq!(v.false_suspicions, 6);
    assert_eq!(
        v.frames_parked, 1,
        "the shrunken retry budget must exhaust into the park path"
    );
    assert_eq!(v.checkpoints_taken, 8);
    assert_eq!(v.recoveries, 1);
    // Crash-restart rejoins exactly when the plan says: the outage is
    // the whole downtime (restore/replay costs were charged when the
    // restart was scheduled).
    assert_eq!(v.recovery_time, SimDuration::from_millis(20));

    let t = r.transport;
    assert_eq!(t.retransmissions, 18);
    assert_eq!(t.max_attempts, 4);
}

#[test]
fn repeat_runs_are_digest_identical() {
    assert_eq!(crashed_radix().digest(), crashed_radix().digest());
}
