//! Seeded regression anchor for the adaptive prefetcher: one 8-node
//! RADIX run at the paper's default scale with `PrefetchMode::Adaptive`,
//! every adaptive observable pinned — the §3.3 miss taxonomy, the
//! throttle transition counts, the issue/cancel totals, the report
//! digest, and the fault-summary segment.
//!
//! The whole simulation is deterministic for a given (seed, config),
//! so these exact values must reproduce on every machine and every
//! run. If a legitimate change to the detector, throttle, or cost
//! model moves them, re-derive the constants by printing the fields
//! from this exact config — but treat any unexplained drift as a
//! determinism bug first.

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, PrefetchConfig, RunReport};

fn adaptive_radix() -> RunReport {
    let cfg = DsmConfig::paper_cluster(8)
        .with_seed(1998)
        .with_prefetch(PrefetchConfig::adaptive());
    Benchmark::Radix
        .run(Scale::Default, cfg)
        .expect("adaptive RADIX run")
}

#[test]
fn report_digest_is_pinned() {
    let r = adaptive_radix();
    assert!(r.verified, "RADIX must verify under adaptive prefetch");
    assert_eq!(r.digest(), 0xce50424b7b447bd5, "report digest moved");
    assert_eq!(r.events_processed, 8_040);
}

/// The §3.3 taxonomy of every remote fault in the run. Coverage is
/// (hits + too_late + invalidated) / total — the fraction of faults
/// the prefetcher saw coming, whether or not the page arrived in
/// time.
#[test]
fn miss_taxonomy_is_pinned() {
    let r = adaptive_radix();
    let p = &r.prefetch;
    assert_eq!(p.hits, 38);
    assert_eq!(p.too_late, 34);
    assert_eq!(p.invalidated, 17);
    assert_eq!(p.no_pf, 292);
    assert_eq!(p.messages, 359);
    assert_eq!(p.unnecessary, 13);
    assert!((p.coverage() - 0.233_596).abs() < 1e-6, "coverage moved");
}

/// The adaptive engine's own counters: eight streams locked onto a
/// stride, the throttle deepened the lead three times chasing late
/// replies and backed off four, and about a third of the planned
/// windows were cancelled before issue (already cached or in flight).
#[test]
fn adaptive_stats_are_pinned() {
    let r = adaptive_radix();
    let a = r.adaptive.expect("adaptive stats present when enabled");
    assert_eq!(a.detected_strides, 8);
    assert_eq!(a.window_flips, 0);
    assert_eq!(a.ramps, 0);
    assert_eq!(a.deepens, 3);
    assert_eq!(a.backoffs, 4);
    assert_eq!(a.suppressions, 0);
    assert_eq!(a.resumes, 0);
    assert_eq!(a.issued, 123);
    assert_eq!(a.cancelled, 71);
}

/// The summary one-liner with its adaptive segment, verbatim. The
/// three retransmissions are real: adaptive traffic is reliable, and
/// burst windows occasionally push a frame past its RTO.
#[test]
fn fault_summary_line_is_pinned() {
    let r = adaptive_radix();
    assert_eq!(
        r.fault_summary_line().as_deref(),
        Some(
            "faults: 0 msgs dropped, 0 duplicated, 0 reordered; \
             transport: 3 retransmissions (max 2 attempts/frame), \
             3 duplicate frames suppressed; \
             prefetch: 0 requests lost, 0 replies lost; \
             adaptive: 8 strides, 0 flips, 7 throttle transitions, \
             123 issued, 71 cancelled"
        )
    );
}

#[test]
fn repeat_runs_are_digest_identical() {
    assert_eq!(adaptive_radix().digest(), adaptive_radix().digest());
}
