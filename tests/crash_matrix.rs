//! The crash matrix: every application survives a mid-run crash-stop
//! node failure — and, in the full grid, a crash-restart outage —
//! under every latency-tolerance technique, with the full oracle
//! obligation intact: zero invariant violations, a final memory image
//! byte-identical to the golden sequential executor, digest-identical
//! same-seed repeat runs, and both executions passing the
//! application's own verification.
//!
//! Each cell sizes the crash from a crash-free dry run of the same
//! configuration: the victim dies at half the dry run's completion
//! time, which lands mid-computation for every (app, technique) pair
//! without per-cell hand tuning.
//!
//! The default run covers a smoke-sized subset so `cargo test` stays
//! fast; set `RSDSM_CRASH_MATRIX=full` for the full 8 apps ×
//! {O, P, 2T, 2TP} × {crash-stop, crash-restart} grid. Cells are
//! independent simulations and fan out across cores via
//! `rsdsm_bench::pool` (override the worker count with `RSDSM_JOBS`).

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DsmConfig, RecoveryConfig};
use rsdsm::oracle::{check_technique, Technique};
use rsdsm::simnet::{NodeCrash, SimDuration, SimTime};
use rsdsm_bench::pool;

/// The victim. Node 0 hosts the managers and the recovery
/// coordinator and is assumed stable; any other node may die.
const VICTIM: usize = 2;

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

/// Lease parameters sized for `Scale::Test` runs: detection settles
/// well before the run ends without drowning it in heartbeats.
fn test_recovery() -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_micros(200),
        lease_timeout: SimDuration::from_micros(1_000),
        confirm_grace: SimDuration::from_micros(200),
        restart_base: SimDuration::from_micros(1_000),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(2)
    }
}

fn full_grid() -> bool {
    std::env::var("RSDSM_CRASH_MATRIX").as_deref() == Ok("full")
}

/// Fans independent crash cells across cores; a panicking cell fails
/// the test via [`pool::run`]'s panic propagation.
fn assert_cells(cells: Vec<(Benchmark, Technique, Option<SimDuration>)>) {
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|(bench, technique, restart)| move || assert_cell(bench, technique, restart))
        .collect();
    pool::run(pool::matrix_jobs(), tasks);
}

/// One cell: dry-run for timing, crash the victim halfway, then run
/// the full oracle check (DSM run + golden model + repeat run) on the
/// crashing configuration.
fn assert_cell(bench: Benchmark, technique: Technique, restart_after: Option<SimDuration>) {
    let cfg = base(4).with_recovery(test_recovery());
    let dry = bench
        .run(Scale::Test, technique.configure(bench, cfg.clone()))
        .unwrap_or_else(|e| panic!("{bench} {} dry run: {e}", technique.label()));
    let mid = SimTime::ZERO + dry.total_time / 2;

    let mut cfg = cfg;
    cfg.faults = cfg.faults.with_node_crash(NodeCrash {
        node: VICTIM,
        at: mid,
        restart_after,
    });
    let crashed = bench
        .run(Scale::Test, technique.configure(bench, cfg.clone()))
        .unwrap_or_else(|e| panic!("{bench} {} crash at {mid}: {e}", technique.label()));
    assert!(
        crashed.verified,
        "{bench} {}: result corrupted by crash at {mid}",
        technique.label()
    );
    assert_eq!(crashed.recovery.crashes, 1);
    assert!(
        crashed.recovery.recoveries >= 1,
        "{bench} {}: victim never rejoined after crash at {mid}",
        technique.label()
    );
    assert!(
        crashed.recovery.checkpoints_taken >= 1,
        "{bench} {}: no checkpoint was ever captured",
        technique.label()
    );

    let verdict = check_technique(bench, Scale::Test, technique, cfg)
        .unwrap_or_else(|e| panic!("{bench} {} oracle: {e:?}", technique.label()));
    assert!(
        verdict.ok(),
        "oracle failed with crash at {mid}: {}",
        verdict.summary_line()
    );
}

#[test]
fn fast_subset_crash_stop() {
    let mut cells = Vec::new();
    for bench in [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterNsq] {
        for technique in [Technique::Base, Technique::Combined] {
            cells.push((bench, technique, None));
        }
    }
    assert_cells(cells);
}

#[test]
fn fast_subset_crash_restart() {
    let mut cells = Vec::new();
    for bench in [Benchmark::Sor, Benchmark::Radix] {
        for technique in [Technique::Base, Technique::Combined] {
            cells.push((bench, technique, Some(SimDuration::from_millis(5))));
        }
    }
    assert_cells(cells);
}

/// Checkpoint capture stays off the critical path: a crash-free run
/// with barrier-aligned checkpointing enabled is digest-identical to
/// the same seed without it, once the explicitly-accounted checkpoint
/// fields (the recovery counters and the config that enables them)
/// are factored out. Capture charges no CPU, draws no randomness, and
/// schedules no events — it must not perturb the run it protects.
#[test]
fn checkpointing_is_digest_transparent() {
    use rsdsm::core::RecoveryStats;

    let plain = Benchmark::Radix
        .run(Scale::Test, base(4))
        .expect("plain run");
    let mut ckpt = Benchmark::Radix
        .run(
            Scale::Test,
            base(4).with_recovery(RecoveryConfig {
                checkpoint_every: 4,
                ..RecoveryConfig::off()
            }),
        )
        .expect("checkpointing run");
    assert!(ckpt.recovery.checkpoints_taken >= 1, "no checkpoint taken");
    assert_eq!(ckpt.recovery.crashes, 0);

    ckpt.recovery = RecoveryStats::default();
    ckpt.config.recovery = RecoveryConfig::off();
    assert_eq!(
        plain.digest(),
        ckpt.digest(),
        "checkpoint capture perturbed a crash-free run"
    );
}

#[test]
fn full_matrix() {
    if !full_grid() {
        eprintln!("skipping full crash matrix (set RSDSM_CRASH_MATRIX=full)");
        return;
    }
    let mut cells = Vec::new();
    for bench in Benchmark::ALL {
        for technique in Technique::ALL {
            for restart in [None, Some(SimDuration::from_millis(5))] {
                cells.push((bench, technique, restart));
            }
        }
    }
    assert_cells(cells);
}
