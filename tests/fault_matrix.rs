//! The fault-injection matrix.
//!
//! Every application must produce correct (verified) results under
//! every fault plan in the grid — injected loss, duplication,
//! reordering, degradation windows, node stalls — because the
//! reliable transport recovers control traffic and the prefetch
//! protocol was designed to survive losing droppable traffic. And
//! identical (config, plan, seed) runs must produce byte-identical
//! reports: fault injection is deterministic, not flaky.
//!
//! The default grid is a smoke-sized subset so `cargo test` stays
//! fast; set `RSDSM_FAULT_MATRIX=full` for the full grid (loss 0–20%,
//! duplication, reordering, degraded windows) over all applications.
//! Grid cells are independent simulations, so they fan out across
//! cores via `rsdsm_bench::pool` (override with `RSDSM_JOBS`).

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{DegradedWindow, DsmConfig, FaultPlan, NodeStall};
use rsdsm::simnet::{SimDuration, SimTime};
use rsdsm_bench::pool;

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

fn full_grid() -> bool {
    std::env::var("RSDSM_FAULT_MATRIX").is_ok_and(|v| v == "full")
}

/// A plan mixing every fault class the injector supports.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::uniform_loss(seed, 0.10)
        .with_duplication(0.10)
        .with_reordering(0.25, SimDuration::from_micros(400))
        .with_jitter(SimDuration::from_micros(30))
        .with_degraded_window(DegradedWindow {
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(40),
            node: Some(1),
            extra_drop: 0.25,
            extra_latency: SimDuration::from_micros(250),
        })
        .with_node_stall(NodeStall {
            node: 2,
            from: SimTime::from_millis(5),
            until: SimTime::from_millis(9),
        })
}

/// The fault-plan grid; the smoke subset marks which plans every
/// `cargo test` run covers.
fn grid() -> Vec<(&'static str, FaultPlan)> {
    let mut plans = vec![
        ("none", FaultPlan::none()),
        ("loss20", FaultPlan::uniform_loss(0xFA11, 0.20)),
        ("chaos", chaos_plan(0xC4A5)),
    ];
    if full_grid() {
        plans.push(("loss05", FaultPlan::uniform_loss(0x105, 0.05)));
        plans.push(("loss10", FaultPlan::uniform_loss(0x10A, 0.10)));
        plans.push((
            "dup",
            FaultPlan::none().with_seed(0xD0B).with_duplication(0.15),
        ));
        plans.push((
            "reorder",
            FaultPlan::none()
                .with_seed(0x4E0)
                .with_reordering(0.30, SimDuration::from_micros(500)),
        ));
    }
    plans
}

/// Every application completes, verifies, and — under lossy plans —
/// actually exercises the retry machinery.
#[test]
fn all_apps_survive_the_fault_grid() {
    let mut cells = Vec::new();
    for bench in Benchmark::ALL {
        for (name, plan) in grid() {
            cells.push((bench, name, plan));
        }
    }
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|(bench, name, plan)| {
            move || {
                let lossy = !plan.drop.control.is_nan() && plan.drop.control > 0.0;
                let r = bench
                    .run(Scale::Test, base(4).with_faults(plan))
                    .unwrap_or_else(|e| panic!("{bench} under plan {name}: {e}"));
                assert!(r.verified, "{bench} result corrupted under plan {name}");
                if name == "none" {
                    assert_eq!(
                        r.transport.retransmissions, 0,
                        "{bench}: fault-free runs must never retransmit"
                    );
                    assert_eq!(r.fault_injection.injected_drops, 0);
                }
                if lossy {
                    assert!(
                        r.fault_injection.injected_drops > 0,
                        "{bench} under {name}: plan injected nothing"
                    );
                    assert!(
                        r.transport.retransmissions > 0,
                        "{bench} under {name}: losses must provoke retransmissions"
                    );
                    assert!(
                        r.fault_summary_line().is_some(),
                        "{bench} under {name}: summary line must report the faults"
                    );
                }
            }
        })
        .collect();
    pool::run(pool::matrix_jobs(), tasks);
}

/// Same seed, same plan ⇒ byte-identical report, twice over.
#[test]
fn fault_runs_are_byte_identical() {
    for bench in [Benchmark::Sor, Benchmark::WaterSp] {
        let cfg = || base(4).with_faults(chaos_plan(0xBEEF));
        let a = bench.run(Scale::Test, cfg()).expect("run 1");
        let b = bench.run(Scale::Test, cfg()).expect("run 2");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{bench}: identical fault runs diverged"
        );
    }
}

/// An installed-but-empty plan is transparent end to end: the run is
/// byte-identical to one with no plan installed at all.
#[test]
fn empty_plan_is_transparent_end_to_end() {
    let plain = Benchmark::LuCont.run(Scale::Test, base(4)).expect("plain");
    let planned = Benchmark::LuCont
        .run(Scale::Test, base(4).with_faults(FaultPlan::none()))
        .expect("planned");
    assert_eq!(format!("{plain:?}"), format!("{planned:?}"));
}

/// Dropped prefetch traffic degrades to demand faults: under heavy
/// loss a prefetch-enabled run still verifies, loses some prefetch
/// requests or replies, and counts the faults it fell back to.
#[test]
fn prefetch_fallback_absorbs_injected_loss() {
    let bench = Benchmark::Sor;
    let r = bench
        .run(
            Scale::Default,
            base(8)
                .with_prefetch(bench.paper_prefetch())
                .with_faults(FaultPlan::uniform_loss(0x50F7, 0.20)),
        )
        .expect("prefetch under loss");
    assert!(
        r.verified,
        "non-binding prefetching must stay safe under loss"
    );
    assert!(r.prefetch.messages > 0);
    let lost = r.prefetch.send_drops + r.prefetch.reply_drops;
    assert!(
        lost > 0,
        "20% loss must claim some prefetch traffic (send_drops={}, reply_drops={})",
        r.prefetch.send_drops,
        r.prefetch.reply_drops
    );
    assert!(
        r.prefetch.too_late + r.prefetch.no_pf + r.prefetch.invalidated > 0,
        "lost prefetches must surface as demand faults"
    );
    assert!(
        r.transport.retransmissions > 0,
        "control traffic must have been recovered by retries"
    );
}

/// The transport's duplicate suppression shields the engine: heavy
/// duplication changes nothing about correctness, and the suppressed
/// copies are counted.
#[test]
fn duplication_is_suppressed_not_delivered() {
    let plan = FaultPlan::none().with_seed(0xD1D1).with_duplication(0.30);
    let r = Benchmark::Fft
        .run(Scale::Test, base(4).with_faults(plan))
        .expect("duplication run");
    assert!(r.verified);
    assert!(r.fault_injection.duplicates > 0, "plan duplicated nothing");
    assert!(
        r.transport.dup_frames_suppressed > 0,
        "duplicated reliable frames must be suppressed at the receiver"
    );
    assert_eq!(
        r.transport.retransmissions, 0,
        "duplication alone never retries"
    );
}

/// Reordering on the wire is invisible above the transport: frames
/// are buffered and released in order, and the run still verifies.
#[test]
fn reordering_is_restored_to_fifo() {
    let plan = FaultPlan::none()
        .with_seed(0x0F1F0)
        .with_reordering(0.40, SimDuration::from_micros(600));
    let r = Benchmark::Radix
        .run(Scale::Test, base(4).with_faults(plan))
        .expect("reorder run");
    assert!(r.verified);
    assert!(r.fault_injection.reordered > 0, "plan reordered nothing");
    assert!(
        r.transport.buffered_out_of_order > 0,
        "reordered frames must pass through the resequencing buffer"
    );
}
