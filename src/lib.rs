//! # rsdsm
//!
//! A full Rust reproduction of *Comparative Evaluation of Latency
//! Tolerance Techniques for Software Distributed Shared Memory*
//! (Mowry, Chan, Lo — HPCA-4, 1998).
//!
//! This facade crate re-exports the workspace members so examples and
//! downstream users have a single dependency:
//!
//! - [`simnet`]: discrete-event engine and ATM network model.
//! - [`protocol`]: lazy-release-consistency machinery (vector clocks,
//!   intervals, write notices, twins, diffs).
//! - [`core`]: the TreadMarks-style DSM runtime with non-binding
//!   prefetching and multithreading — the paper's system.
//! - [`apps`]: the eight SPLASH-2-style benchmark applications.
//! - [`oracle`]: golden-model differential checking and determinism
//!   harness over the full benchmark × technique matrix.
//! - [`stats`]: execution-time breakdowns and figure/table rendering.
//!
//! # Examples
//!
//! Run SOR on a simulated 8-node cluster and print the paper-style
//! execution time breakdown:
//!
//! ```
//! use rsdsm::apps::SorApp;
//! use rsdsm::core::{DsmConfig, Simulation};
//!
//! let config = DsmConfig::paper_cluster(8).with_seed(1);
//! let app = SorApp::new(64, 64, 4);
//! let report = Simulation::new(config).run(&app).expect("run succeeds");
//! assert!(report.verified);
//! println!("{}", report.breakdown.normalized_to_self());
//! ```

pub use rsdsm_apps as apps;
pub use rsdsm_core as core;
pub use rsdsm_oracle as oracle;
pub use rsdsm_protocol as protocol;
pub use rsdsm_simnet as simnet;
pub use rsdsm_stats as stats;
