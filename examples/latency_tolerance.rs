//! The paper's core comparison on one application: original
//! TreadMarks, prefetching, multithreading, and the combined approach
//! (multithreading for synchronization latency, prefetching for
//! memory latency).
//!
//! ```text
//! cargo run --release --example latency_tolerance [APP]
//! ```

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::{Category, DsmConfig, PrefetchConfig, ThreadConfig};
use rsdsm::stats::{render_bars, speedup_label, Bar};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::WaterNsq);
    let base = || DsmConfig::paper_cluster(8).with_seed(1998);

    let original = app.run(Scale::Default, base()).expect("original run");
    let prefetch = app
        .run(Scale::Default, base().with_prefetch(app.paper_prefetch()))
        .expect("prefetch run");
    let threads = app
        .run(
            Scale::Default,
            base().with_threads(ThreadConfig::multithreaded(2)),
        )
        .expect("multithreaded run");
    let combined = app
        .run(
            Scale::Default,
            base()
                .with_threads(ThreadConfig::combined(2))
                .with_prefetch(PrefetchConfig {
                    suppress_redundant: true,
                    ..app.paper_prefetch()
                }),
        )
        .expect("combined run");

    let bars = [
        Bar::new("O", original.breakdown),
        Bar::new("P", prefetch.breakdown),
        Bar::new("2T", threads.breakdown),
        Bar::new("2TP", combined.breakdown),
    ];
    println!(
        "{}",
        render_bars(app.name(), &bars, original.breakdown.total())
    );
    println!();
    println!(
        "prefetching    : speedup {}, memory idle {} -> {}",
        speedup_label(original.total_time, prefetch.total_time),
        original.breakdown[Category::MemoryIdle],
        prefetch.breakdown[Category::MemoryIdle],
    );
    println!(
        "multithreading : speedup {}, sync idle {} -> {}",
        speedup_label(original.total_time, threads.total_time),
        original.breakdown[Category::SyncIdle],
        threads.breakdown[Category::SyncIdle],
    );
    println!(
        "combined       : speedup {}",
        speedup_label(original.total_time, combined.total_time),
    );
    println!(
        "prefetch stats : {} issued, {:.1}% unnecessary, coverage {:.1}%",
        prefetch.prefetch.calls,
        prefetch.prefetch.unnecessary_fraction() * 100.0,
        prefetch.prefetch.coverage() * 100.0,
    );
}
