//! Quickstart: run one benchmark on the simulated 8-node cluster and
//! print the paper-style execution-time breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::DsmConfig;
use rsdsm::stats::{render_bars, Bar};

fn main() {
    // The paper's cluster: eight workstations on a 155 Mbps ATM LAN.
    let config = DsmConfig::paper_cluster(8).with_seed(1998);

    // Run SOR (red-black successive over-relaxation) at the scaled
    // default size; every run verifies its numeric result against a
    // sequential reference.
    let report = Benchmark::Sor
        .run(Scale::Default, config)
        .expect("simulation succeeds");
    assert!(report.verified, "result verified against the reference");

    println!(
        "{}",
        render_bars(
            "SOR on 8 nodes",
            &[Bar::new("O", report.breakdown)],
            report.breakdown.total()
        )
    );
    println!();
    println!("simulated execution time : {}", report.total_time);
    println!("messages                 : {}", report.net.total_msgs);
    println!(
        "traffic                  : {} KB",
        report.net.total_bytes / 1024
    );
    println!("remote page misses       : {}", report.misses.misses);
    println!("average miss latency     : {}", report.misses.avg_latency());
    println!("barrier episodes         : {}", report.barriers.events);
}
