//! Network sensitivity: how the latency-tolerance techniques respond
//! to the interconnect. Sweeps link bandwidth around the paper's
//! 155 Mbps ATM and reports the prefetching speedup at each point —
//! the crossover behaviour §3.3.2 attributes to contention.
//!
//! ```text
//! cargo run --release --example network_sensitivity
//! ```

use rsdsm::apps::{Benchmark, Scale};
use rsdsm::core::DsmConfig;
use rsdsm::stats::{speedup_label, Align, AsciiTable};

fn main() {
    let mut table = AsciiTable::new(
        vec![
            "bandwidth",
            "O total",
            "P total",
            "P speedup",
            "P drops",
            "avg miss (O)",
        ],
        vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for mbps in [50u64, 100, 155, 300, 622] {
        let mut base = DsmConfig::paper_cluster(8).with_seed(1998);
        base.net.bandwidth_bps = mbps * 1_000_000;
        let mut pf_cfg = base.clone();
        pf_cfg.prefetch = Benchmark::Fft.paper_prefetch();

        let orig = Benchmark::Fft.run(Scale::Default, base).expect("original");
        let pf = Benchmark::Fft
            .run(Scale::Default, pf_cfg)
            .expect("prefetch");
        table.add_row(vec![
            format!("{mbps} Mbps"),
            orig.total_time.to_string(),
            pf.total_time.to_string(),
            speedup_label(orig.total_time, pf.total_time),
            pf.net.drops.to_string(),
            orig.misses.avg_latency().to_string(),
        ]);
    }
    println!("FFT under varying link bandwidth (8 nodes)\n\n{table}");
}
