//! Writing your own application against the DSM: a parallel
//! histogram-equalization kernel with prefetch annotations and result
//! verification, run under every latency-tolerance mode.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use rsdsm::core::{
    BarrierId, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy, LockId, PrefetchConfig, SharedVec,
    Simulation, ThreadConfig, VerifyCtx,
};
use rsdsm::simnet::SimDuration;

/// Each thread histograms a block of a shared image, merges its local
/// histogram into a shared one under a lock, then (after a barrier)
/// remaps its block through the global cumulative distribution.
struct HistogramEq {
    pixels: usize,
    bins: usize,
}

/// Shared data: the image, the global histogram, and the remap table.
#[derive(Clone, Copy)]
struct Handles {
    image: SharedVec<u32>,
    hist: SharedVec<u64>,
    remap: SharedVec<u32>,
}

const HIST_LOCK: LockId = LockId(7);

impl HistogramEq {
    fn pixel(&self, i: usize) -> u32 {
        // Deterministic synthetic image, biased toward dark values.
        let v = rsdsm::apps::gen_f64(0xC0FFEE, i);
        ((v * v) * self.bins as f64) as u32
    }

    fn reference(&self) -> Vec<u32> {
        let mut hist = vec![0u64; self.bins];
        for i in 0..self.pixels {
            hist[self.pixel(i) as usize] += 1;
        }
        let mut remap = vec![0u32; self.bins];
        let mut cum = 0u64;
        for (b, h) in hist.iter().enumerate() {
            cum += h;
            remap[b] = ((cum * (self.bins as u64 - 1)) / self.pixels as u64) as u32;
        }
        (0..self.pixels)
            .map(|i| remap[self.pixel(i) as usize])
            .collect()
    }
}

impl DsmProgram for HistogramEq {
    type Handles = Handles;

    fn name(&self) -> String {
        "histogram-eq".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        Handles {
            image: heap.alloc(self.pixels, HomePolicy::Blocked),
            hist: heap.alloc(self.bins, HomePolicy::Single(0)),
            remap: heap.alloc(self.bins, HomePolicy::Single(0)),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        let (p0, p1) = rsdsm::apps::block_range(self.pixels, t, n);

        // Master initialization (and zeroing the shared histogram).
        if t == 0 {
            let img: Vec<u32> = (0..self.pixels).map(|i| self.pixel(i)).collect();
            ctx.write_slice(&h.image, 0, &img);
            ctx.write_slice(&h.hist, 0, &vec![0u64; self.bins]);
        }
        ctx.barrier(BarrierId(0));

        // Local histogram of my block (first touch: prefetch it).
        ctx.prefetch(&h.image, p0, p1);
        let mine = ctx.read_vec(&h.image, p0, p1 - p0);
        let mut local = vec![0u64; self.bins];
        for &px in &mine {
            local[px as usize] += 1;
        }
        ctx.compute(SimDuration::from_nanos(mine.len() as u64 * 40));

        // Merge under the lock; the prefetch is hoisted above the
        // acquire, as the paper does for WATER-NSQ (§3.2).
        ctx.prefetch(&h.hist, 0, self.bins);
        ctx.acquire(HIST_LOCK);
        let mut global = ctx.read_vec(&h.hist, 0, self.bins);
        for (g, l) in global.iter_mut().zip(&local) {
            *g += *l;
        }
        ctx.write_slice(&h.hist, 0, &global);
        ctx.release(HIST_LOCK);
        ctx.barrier(BarrierId(1));

        // Thread 0 computes the remap table from the full histogram.
        if t == 0 {
            let hist = ctx.read_vec(&h.hist, 0, self.bins);
            let mut remap = vec![0u32; self.bins];
            let mut cum = 0u64;
            for (b, hv) in hist.iter().enumerate() {
                cum += hv;
                remap[b] = ((cum * (self.bins as u64 - 1)) / self.pixels as u64) as u32;
            }
            ctx.compute(SimDuration::from_micros(self.bins as u64));
            ctx.write_slice(&h.remap, 0, &remap);
        }
        ctx.barrier(BarrierId(2));

        // Everyone remaps its block through the shared table.
        ctx.prefetch(&h.remap, 0, self.bins);
        let remap = ctx.read_vec(&h.remap, 0, self.bins);
        let out: Vec<u32> = mine.iter().map(|&px| remap[px as usize]).collect();
        ctx.compute(SimDuration::from_nanos(out.len() as u64 * 30));
        ctx.write_slice(&h.image, p0, &out);
        ctx.barrier(BarrierId(3));
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let expect = self.reference();
        (0..self.pixels).all(|i| mem.read(&h.image, i) == expect[i])
    }
}

fn main() {
    let app = HistogramEq {
        pixels: 1 << 16,
        bins: 256,
    };
    let base = || DsmConfig::paper_cluster(8).with_seed(7);

    for (label, cfg) in [
        ("original", base()),
        ("prefetching", base().with_prefetch(PrefetchConfig::hand())),
        (
            "2 threads/node",
            base().with_threads(ThreadConfig::multithreaded(2)),
        ),
        (
            "combined",
            base()
                .with_threads(ThreadConfig::combined(2))
                .with_prefetch(PrefetchConfig::hand()),
        ),
    ] {
        let report = Simulation::new(cfg).run(&app).expect("run succeeds");
        assert!(report.verified, "{label}: wrong result");
        println!(
            "{label:>15}: {} ({} msgs, {} misses)",
            report.total_time, report.net.total_msgs, report.misses.misses
        );
    }
}
